//! Section V-D: error analysis — which statement classes stay wrong after
//! the budget is spent, and what the crowd's per-class accuracy is.
//!
//! Run with: `cargo run --release -p crowdfusion-bench --bin error_analysis [--quick]`

use crowdfusion::pipeline::entity_cases_from_books;
use crowdfusion::prelude::*;
use crowdfusion_bench::{is_quick, standard_books};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;

fn main() {
    let quick = is_quick();
    let n_books = if quick { 20 } else { 100 };
    let budget = if quick { 20 } else { 60 };
    let pc = 0.86; // the paper's measured gMission accuracy
    let books = standard_books(n_books, (3, 8), 99);
    let fusion = ModifiedCrh::default().fuse(&books.dataset).unwrap();
    let cases = entity_cases_from_books(&books, &fusion).unwrap();
    let config = RoundConfig::new(2, budget, pc).unwrap();

    // Crowd with the paper's per-class confusion behaviour.
    let model = ClassAccuracy::paper_defaults(pc);
    println!("crowd per-class accuracy model (Section V-D calibration):");
    for class in TaskClass::ALL {
        println!("  {:<16} {:.2}", class.label(), model.for_class(class));
    }

    let mut platform = CrowdPlatform::new(WorkerPool::uniform(40, pc).unwrap(), model, 17);
    let mut rng = StdRng::seed_from_u64(17);
    let mut seq = 0u64;

    let mut residual: HashMap<&str, (usize, usize)> = HashMap::new();
    let mut counts = ConfusionCounts::default();
    for case in &cases {
        let trace = crowdfusion::core::round::run_entity(
            case,
            &GreedySelector::fast(),
            config,
            &mut platform,
            &mut rng,
            &mut seq,
        )
        .unwrap();
        let predicted = trace.posterior.map_truth();
        counts.add_marginals(&trace.posterior.marginals(), case.gold);
        for (i, class) in case.classes.iter().enumerate() {
            let entry = residual.entry(class.label()).or_insert((0, 0));
            entry.1 += 1;
            if predicted.get(i) != case.gold.get(i) {
                entry.0 += 1;
            }
        }
    }

    println!(
        "\nfinal micro metrics: F1 = {:.3}, precision = {:.3}, recall = {:.3}",
        counts.f1(),
        counts.precision(),
        counts.recall()
    );
    println!("\nresidual errors by statement class:");
    println!(
        "{:<18} {:>8} {:>8} {:>12}",
        "class", "errors", "total", "error rate"
    );
    let mut rows: Vec<_> = residual.into_iter().collect();
    rows.sort_by(|a, b| {
        let ra = a.1 .0 as f64 / a.1 .1.max(1) as f64;
        let rb = b.1 .0 as f64 / b.1 .1.max(1) as f64;
        rb.total_cmp(&ra)
    });
    for (label, (errors, total)) in rows {
        println!(
            "{label:<18} {errors:>8} {total:>8} {:>11.1}%",
            100.0 * errors as f64 / total.max(1) as f64
        );
    }

    println!("\nShape checks vs Section V-D: misspelling and wrong-order classes");
    println!("dominate the residual errors (their crowd accuracy is at or below");
    println!("chance), additional-info follows, clean statements are almost");
    println!("fully resolved. The gap to F1 = 1 is explained by these classes.");
}
