//! Figure 2: quality improvement of OPT, Approx. and Random with cost, on
//! the 40 smallest books with k = 2 and budget B = 10, for
//! Pc ∈ {0.7, 0.8, 0.9} — six panels (a)–(f): F1-score and utility.
//!
//! Expected shape (paper Section V-C-1): OPT ≈ Approx. ≫ Random; quality
//! rises with budget but is not perfectly monotone because crowd answers
//! can be wrong.
//!
//! Run with: `cargo run --release -p crowdfusion-bench --bin fig2 [--quick]`

use crowdfusion::prelude::*;
use crowdfusion_bench::{
    is_quick, run_quality_experiment, sample_points, standard_books, standard_cases,
};
use crowdfusion_core::answers::AnswerEvaluator;

fn main() {
    let quick = is_quick();
    // The paper: "a small subset of data with 40 books, which contains the
    // least number of statements". OPT with k = 2 needs small n anyway.
    let (n_books, subset) = if quick { (30, 12) } else { (100, 40) };
    let books = standard_books(n_books, (3, 6), 2017);
    let small = books.select_books(&books.smallest_books(subset));
    let cases = standard_cases(&small);
    let k = 2;
    let budget = 10;
    let seeds: u64 = if quick { 2 } else { 5 };

    println!(
        "Figure 2 reproduction: {} smallest books, k = {k}, B = {budget}, {} seeds averaged",
        subset, seeds
    );

    for pc in [0.7, 0.8, 0.9] {
        println!("\n===== Pc = {pc} =====");
        println!(
            "{:>6} {:>10} {:>10} {:>10} {:>12} {:>12} {:>12}",
            "cost", "OPT F1", "Appr F1", "Rand F1", "OPT util", "Appr util", "Rand util"
        );
        let selectors: Vec<(&str, Box<dyn TaskSelector>)> = vec![
            (
                "opt",
                Box::new(OptSelector::new(AnswerEvaluator::Butterfly)),
            ),
            ("approx", Box::new(GreedySelector::fast())),
            ("random", Box::new(RandomSelector)),
        ];
        // Average the series across seeds per selector.
        let mut series: Vec<Vec<QualityPoint>> = Vec::new();
        for (_, selector) in &selectors {
            let mut averaged: Vec<QualityPoint> = Vec::new();
            for seed in 0..seeds {
                let trace = run_quality_experiment(
                    cases.clone(),
                    selector.as_ref(),
                    k,
                    budget,
                    pc,
                    9000 + seed,
                );
                let sampled = sample_points(&trace, 5);
                if averaged.is_empty() {
                    averaged = sampled;
                } else {
                    for (acc, p) in averaged.iter_mut().zip(sampled) {
                        acc.utility += p.utility;
                        acc.f1 += p.f1;
                        acc.precision += p.precision;
                        acc.recall += p.recall;
                    }
                }
            }
            for p in &mut averaged {
                p.utility /= seeds as f64;
                p.f1 /= seeds as f64;
                p.precision /= seeds as f64;
                p.recall /= seeds as f64;
            }
            series.push(averaged);
        }
        for ((opt, appr), rand) in series[0].iter().zip(&series[1]).zip(&series[2]) {
            println!(
                "{:>6} {:>10.3} {:>10.3} {:>10.3} {:>12.2} {:>12.2} {:>12.2}",
                opt.cost, opt.f1, appr.f1, rand.f1, opt.utility, appr.utility, rand.utility,
            );
        }
    }
    println!("\nShape checks: OPT ≈ Approx. on both metrics; both clearly beat");
    println!("Random at every cost level; higher Pc converges faster.");
}
