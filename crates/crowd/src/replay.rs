//! Deterministic answer-stream replay and duplicate rejection — the
//! service-side crowd utilities.
//!
//! The batched experiment protocol records one answer-stream seed per
//! entity ([`crate::AnswerStreams`]); the serving layer hands that seed to
//! whichever client simulates the crowd for a session. [`AnswerReplay`]
//! replays the stream from the recorded seed: it draws through the exact
//! [`crate::platform`] channel (`answer_one`), so its answers are
//! bit-identical to a platform fork seeded the same way — which is what
//! lets a service session reproduce an offline experiment's crowd answer
//! for answer.
//!
//! [`dedup_answers`] is the matching client-side guard: real crowds
//! redeliver (retries, at-least-once queues), so a client collecting
//! [`Answer`]s can drop repeats by task id — first answer wins — before
//! spending wire round trips on them. The serving layer's sessions
//! independently reject duplicates at ingestion with the same
//! first-answer-wins rule, so the two layers agree on which answer
//! counts.

use crate::answer::{Answer, AnswerModel};
use crate::error::CrowdError;
use crate::platform::answer_one;
use crate::task::{Task, TaskId};
use crate::worker::WorkerPool;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashSet;

/// A deterministic crowd answer stream replayed from a recorded seed.
///
/// `AnswerReplay::from_seed(s)` answers exactly like
/// [`crate::CrowdPlatform::fork_seeded`]`(s)` publishing the same tasks in
/// the same order (and therefore exactly like stream `i` of
/// [`crate::AnswerStreams::from_seeds`] when `s` is the `i`-th seed) —
/// without a platform's ledger bookkeeping, which belongs to the service,
/// not the client.
#[derive(Debug, Clone)]
pub struct AnswerReplay {
    rng: StdRng,
}

impl AnswerReplay {
    /// Starts the stream recorded under `seed`.
    pub fn from_seed(seed: u64) -> AnswerReplay {
        AnswerReplay {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Answers one batch of tasks with hidden ground truths `truths`,
    /// advancing the stream by one draw pair per task.
    pub fn answers<M: AnswerModel>(
        &mut self,
        pool: &WorkerPool,
        model: &M,
        tasks: &[Task],
        truths: &[bool],
    ) -> Result<Vec<Answer>, CrowdError> {
        if tasks.len() != truths.len() {
            return Err(CrowdError::LengthMismatch {
                tasks: tasks.len(),
                truths: truths.len(),
            });
        }
        tasks
            .iter()
            .zip(truths)
            .map(|(task, &truth)| answer_one(pool, model, &mut self.rng, task, truth))
            .collect()
    }
}

/// Deduplicates a batch of answers by task id, keeping the **first**
/// occurrence of each id; returns the kept answers (input order preserved)
/// and the number of duplicates dropped.
pub fn dedup_answers(answers: &[Answer]) -> (Vec<Answer>, usize) {
    // analyze: allow(hash-iter) — membership-only filter; output order
    // comes from the input slice, never from the set.
    let mut seen: HashSet<TaskId> = HashSet::with_capacity(answers.len());
    let mut kept = Vec::with_capacity(answers.len());
    for answer in answers {
        if seen.insert(answer.task) {
            kept.push(*answer);
        }
    }
    let dropped = answers.len() - kept.len();
    (kept, dropped)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::answer::UniformAccuracy;
    use crate::platform::CrowdPlatform;
    use crate::worker::WorkerId;

    fn batch(n: usize) -> (Vec<Task>, Vec<bool>) {
        let tasks = (0..n)
            .map(|i| Task::new(i as u64, format!("q{i}")))
            .collect();
        let truths = (0..n).map(|i| i % 3 == 0).collect();
        (tasks, truths)
    }

    #[test]
    fn replay_matches_platform_fork_bit_for_bit() {
        let pool = WorkerPool::uniform(10, 0.75).unwrap();
        let model = UniformAccuracy::new(0.75);
        let master = CrowdPlatform::new(pool.clone(), model, 1);
        for seed in [3u64, 17, 99] {
            let mut fork = master.fork_seeded(seed);
            let mut replay = AnswerReplay::from_seed(seed);
            // Several rounds: the streams must track each other across
            // batch boundaries, not just on the first call.
            for round in 0..4 {
                let (tasks, truths) = batch(3 + round);
                let expected = fork.publish(&tasks, &truths).unwrap();
                let got = replay.answers(&pool, &model, &tasks, &truths).unwrap();
                assert_eq!(got, expected, "seed {seed} round {round}");
            }
        }
    }

    #[test]
    fn replay_validates_lengths() {
        let pool = WorkerPool::uniform(4, 0.8).unwrap();
        let model = UniformAccuracy::new(0.8);
        let (tasks, _) = batch(3);
        assert_eq!(
            AnswerReplay::from_seed(0)
                .answers(&pool, &model, &tasks, &[true])
                .unwrap_err(),
            CrowdError::LengthMismatch {
                tasks: 3,
                truths: 1
            }
        );
    }

    #[test]
    fn dedup_keeps_first_occurrence_in_order() {
        let mk = |id: u64, value: bool| Answer {
            task: TaskId(id),
            worker: WorkerId(0),
            value,
        };
        let answers = vec![mk(5, true), mk(2, false), mk(5, false), mk(2, false)];
        let (kept, dropped) = dedup_answers(&answers);
        assert_eq!(dropped, 2);
        assert_eq!(kept, vec![mk(5, true), mk(2, false)]);
        let (kept, dropped) = dedup_answers(&[]);
        assert!(kept.is_empty());
        assert_eq!(dropped, 0);
    }
}
