//! Crowd-accuracy estimation from a gold-labelled pre-test.
//!
//! Paper Section II-B: "The accuracy can be estimated by a small set of
//! sample tasks with groundtruth", and Section V-C-3: "if possible, in real
//! applications, we should estimate the reliability by a pre-test with
//! groundtruth."

use crate::answer::AnswerModel;
use crate::error::CrowdError;
use crate::platform::CrowdPlatform;
use crate::task::Task;
use serde::{Deserialize, Serialize};

/// Result of an accuracy pre-test.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AccuracyEstimate {
    /// Point estimate of `Pc` (fraction of correct judgments), clamped into
    /// the model range `[0.5, 1]`.
    pub pc: f64,
    /// Raw (unclamped) fraction of correct judgments.
    pub raw_rate: f64,
    /// Number of sample judgments collected.
    pub samples: usize,
    /// Half-width of the 95 % normal-approximation confidence interval.
    pub ci_half_width: f64,
}

/// Runs a gold-labelled pre-test on the platform and estimates `Pc`.
///
/// Publishes the given sample tasks (costing budget on the platform's
/// ledger like any other batch) and compares the answers with `gold`.
pub fn estimate_accuracy<M: AnswerModel>(
    platform: &mut CrowdPlatform<M>,
    sample_tasks: &[Task],
    gold: &[bool],
) -> Result<AccuracyEstimate, CrowdError> {
    if sample_tasks.len() != gold.len() {
        return Err(CrowdError::LengthMismatch {
            tasks: sample_tasks.len(),
            truths: gold.len(),
        });
    }
    if sample_tasks.is_empty() {
        return Err(CrowdError::NoWorkers);
    }
    let answers = platform.publish(sample_tasks, gold)?;
    let correct = answers
        .iter()
        .zip(gold)
        .filter(|(a, &g)| a.value == g)
        .count();
    let n = gold.len();
    let raw = correct as f64 / n as f64;
    // Normal-approximation 95 % CI half-width.
    let half = 1.96 * (raw * (1.0 - raw) / n as f64).sqrt();
    Ok(AccuracyEstimate {
        pc: raw.clamp(0.5, 1.0),
        raw_rate: raw,
        samples: n,
        ci_half_width: half,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::answer::UniformAccuracy;
    use crate::worker::WorkerPool;

    fn sample(n: usize) -> (Vec<Task>, Vec<bool>) {
        (
            (0..n).map(|i| Task::new(i as u64, "pretest")).collect(),
            (0..n).map(|i| i % 3 == 0).collect(),
        )
    }

    #[test]
    fn estimate_recovers_true_pc() {
        let mut p = CrowdPlatform::new(
            WorkerPool::uniform(10, 0.86).unwrap(),
            UniformAccuracy::new(0.86),
            11,
        );
        let (tasks, gold) = sample(5_000);
        let est = estimate_accuracy(&mut p, &tasks, &gold).unwrap();
        assert!((est.pc - 0.86).abs() < 0.02, "estimate {}", est.pc);
        assert_eq!(est.samples, 5_000);
        assert!(est.ci_half_width > 0.0 && est.ci_half_width < 0.02);
    }

    #[test]
    fn estimate_clamps_into_model_range() {
        // A tiny sample can produce a sub-0.5 raw rate; pc is clamped.
        let mut p = CrowdPlatform::new(
            WorkerPool::uniform(3, 0.5).unwrap(),
            UniformAccuracy::new(0.5),
            0,
        );
        let (tasks, gold) = sample(4);
        let est = estimate_accuracy(&mut p, &tasks, &gold).unwrap();
        assert!(est.pc >= 0.5);
        assert!(est.raw_rate <= 1.0);
    }

    #[test]
    fn pretest_costs_budget() {
        let mut p = CrowdPlatform::new(
            WorkerPool::uniform(3, 0.8).unwrap(),
            UniformAccuracy::new(0.8),
            0,
        );
        let (tasks, gold) = sample(25);
        estimate_accuracy(&mut p, &tasks, &gold).unwrap();
        assert_eq!(p.ledger().judgments, 25);
    }

    #[test]
    fn validation_errors() {
        let mut p = CrowdPlatform::new(
            WorkerPool::uniform(3, 0.8).unwrap(),
            UniformAccuracy::new(0.8),
            0,
        );
        let (tasks, _) = sample(3);
        assert!(estimate_accuracy(&mut p, &tasks, &[true]).is_err());
        assert!(estimate_accuracy(&mut p, &[], &[]).is_err());
    }
}
