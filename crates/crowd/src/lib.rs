//! Crowdsourcing substrate: a faithful simulator of the paper's crowd model.
//!
//! The CrowdFusion paper runs on gMission, a real crowdsourcing platform, but
//! *models* the crowd as a Bernoulli channel: "the probability that answer
//! given by the crowd is correct is `Pc ∈ [0.5, 1]`" with independent tasks
//! (Definition 2). Every algorithm in the system sees only `(task, answer)`
//! pairs, so a simulator drawing from the same channel exercises the exact
//! same code paths — this is the substitution documented in DESIGN.md.
//!
//! Components:
//!
//! * [`Task`] / [`TaskClass`] — a true/false judgment task about one fact;
//!   classes carry the paper's Section V-D error taxonomy (wrong order,
//!   additional information, misspelling), which degrade crowd accuracy;
//! * [`Worker`] / [`WorkerPool`] — individual workers with their own skill;
//! * [`AnswerModel`] implementations — [`UniformAccuracy`] (Definition 2),
//!   [`ClassAccuracy`] (per-error-class correct rates measured in Section
//!   V-D, e.g. misspellings answered correctly less than half the time) and
//!   [`SkillAccuracy`] (per-worker skill);
//! * [`CrowdPlatform`] — the gMission stand-in: publishes task batches,
//!   collects one answer per task (optionally majority-of-`j`), keeps a cost
//!   ledger; [`RoundBatch`] + [`AnswerStreams`] batch every entity's tasks
//!   of one global round into a single `publish_batch` round trip with
//!   per-entity deterministic answer streams;
//! * [`estimate_accuracy`] — the paper's "estimate the reliability by a
//!   pre-test with groundtruth" (Section V-C-3).

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod accuracy;
pub mod aggregation;
pub mod answer;
pub mod error;
pub mod platform;
pub mod replay;
pub mod task;
pub mod worker;

pub use accuracy::{estimate_accuracy, AccuracyEstimate};
pub use aggregation::{em_aggregate, majority_aggregate, AggregatedAnswer, EmEstimate};
pub use answer::{Answer, AnswerModel, ClassAccuracy, SkillAccuracy, UniformAccuracy};
pub use error::CrowdError;
pub use platform::{AnswerStreams, CostLedger, CrowdPlatform};
pub use replay::{dedup_answers, AnswerReplay};
pub use task::{BatchGroup, RoundBatch, Task, TaskClass, TaskId};
pub use worker::{Worker, WorkerId, WorkerPool};
