//! Error type for the crowdsourcing substrate.

use std::fmt;

/// Errors produced by the crowd simulator.
#[derive(Debug, Clone, PartialEq)]
pub enum CrowdError {
    /// An accuracy parameter was outside the paper's `[0.5, 1]` model range.
    AccuracyOutOfRange(f64),
    /// The worker pool is empty but answers were requested.
    NoWorkers,
    /// Mismatched lengths between a task batch and its ground-truth vector.
    LengthMismatch {
        /// Number of tasks submitted.
        tasks: usize,
        /// Number of ground-truth labels supplied.
        truths: usize,
    },
    /// A replication factor of zero was requested.
    ZeroReplication,
    /// A batched group referenced an answer stream that was never seeded.
    UnknownStream {
        /// Stream index requested by the batch group.
        stream: usize,
        /// Number of streams actually available.
        streams: usize,
    },
}

impl fmt::Display for CrowdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CrowdError::AccuracyOutOfRange(p) => {
                write!(f, "crowd accuracy {p} outside the model range [0.5, 1]")
            }
            CrowdError::NoWorkers => write!(f, "worker pool is empty"),
            CrowdError::LengthMismatch { tasks, truths } => {
                write!(f, "{tasks} tasks but {truths} ground-truth labels")
            }
            CrowdError::ZeroReplication => write!(f, "replication factor must be at least 1"),
            CrowdError::UnknownStream { stream, streams } => {
                write!(
                    f,
                    "batch group references answer stream {stream} but only {streams} were seeded"
                )
            }
        }
    }
}

impl std::error::Error for CrowdError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(CrowdError::AccuracyOutOfRange(0.3)
            .to_string()
            .contains("0.3"));
        assert!(CrowdError::LengthMismatch {
            tasks: 2,
            truths: 3
        }
        .to_string()
        .contains('2'));
    }
}
