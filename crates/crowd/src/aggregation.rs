//! Redundant-answer aggregation: majority voting and a Dawid–Skene-style
//! EM estimator.
//!
//! The paper folds crowd redundancy into the single accuracy parameter `Pc`
//! ("Each task is answered independently by a number of anonymous gMission
//! users, and they share an accuracy rate Pc"). This module implements the
//! aggregation machinery behind that abstraction, so the platform's
//! replicated mode can produce calibrated aggregate answers *and* per-worker
//! accuracy estimates without gold labels — the classical
//! Dawid & Skene (1979) EM algorithm restricted to binary tasks.

use crate::answer::Answer;
use crate::error::CrowdError;
use crate::task::TaskId;
use crate::worker::WorkerId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The outcome of aggregating redundant answers for one task.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AggregatedAnswer {
    /// The task.
    pub task: TaskId,
    /// Posterior probability that the fact is true.
    pub prob_true: f64,
    /// The thresholded judgment (`prob_true ≥ 0.5`).
    pub value: bool,
    /// Number of raw judgments aggregated.
    pub votes: usize,
}

/// Result of EM aggregation: per-task posteriors plus per-worker accuracy
/// estimates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EmEstimate {
    /// Aggregated answers, sorted by task id.
    pub answers: Vec<AggregatedAnswer>,
    /// Estimated per-worker accuracies (symmetric confusion model).
    pub worker_accuracy: BTreeMap<WorkerId, f64>,
    /// EM iterations executed.
    pub iterations: usize,
}

/// Simple per-task majority aggregation (ties toward `true`).
pub fn majority_aggregate(answers: &[Answer]) -> Vec<AggregatedAnswer> {
    let mut by_task: BTreeMap<TaskId, (usize, usize)> = BTreeMap::new();
    for a in answers {
        let entry = by_task.entry(a.task).or_insert((0, 0));
        entry.1 += 1;
        if a.value {
            entry.0 += 1;
        }
    }
    by_task
        .into_iter()
        .map(|(task, (yes, total))| AggregatedAnswer {
            task,
            prob_true: yes as f64 / total as f64,
            value: 2 * yes >= total,
            votes: total,
        })
        .collect()
}

/// Dawid–Skene EM for binary tasks with a symmetric per-worker accuracy.
///
/// * E step: task posterior `P(true)` from worker votes weighted by
///   log-odds of each worker's current accuracy;
/// * M step: worker accuracy = expected agreement with the posteriors.
///
/// `prior_true` is the prior probability a task is true (0.5 when unknown).
///
/// **Identifiability.** The binary symmetric model has an exact mirror
/// symmetry: flipping every posterior *and* every accuracy yields an
/// identical marginal likelihood, so a coordinated low-accuracy worker
/// block can pull EM into the mirrored fixed point and no amount of data
/// can distinguish the two. The tie is broken with the paper's own crowd
/// assumption (Definition 2: workers are at least as good as chance): if
/// the converged solution's vote-weighted mean accuracy is below 0.5, the
/// whole solution is flipped. Below-chance *individual* accuracies survive
/// canonicalisation and are genuinely informative — EM counts those
/// workers' votes inverted, which is strictly better than ignoring them.
pub fn em_aggregate(
    answers: &[Answer],
    prior_true: f64,
    max_iters: usize,
    tolerance: f64,
) -> Result<EmEstimate, CrowdError> {
    if answers.is_empty() {
        return Err(CrowdError::NoWorkers);
    }
    if !(0.0..=1.0).contains(&prior_true) {
        return Err(CrowdError::AccuracyOutOfRange(prior_true));
    }
    let mut tasks: BTreeMap<TaskId, Vec<(WorkerId, bool)>> = BTreeMap::new();
    for a in answers {
        tasks.entry(a.task).or_default().push((a.worker, a.value));
    }

    // Initialise posteriors from the raw vote shares and run EM with
    // unconstrained (well, [0.05, 0.95]) accuracies so the chain can move
    // through either basin freely.
    let majority: BTreeMap<TaskId, f64> = tasks
        .iter()
        .map(|(task, votes)| {
            let yes = votes.iter().filter(|(_, v)| *v).count() as f64;
            (*task, yes / votes.len() as f64)
        })
        .collect();
    let (mut workers, mut posteriors, iterations) =
        run_em(&tasks, majority, prior_true, max_iters, tolerance);

    // Canonicalise under Definition 2 (crowds beat chance on average): the
    // mirror solution has identical likelihood, so pick the orientation
    // whose vote-weighted mean accuracy is >= 0.5.
    let mut votes_total = 0.0f64;
    let mut weighted_acc = 0.0f64;
    for votes in tasks.values() {
        for (worker, _) in votes {
            votes_total += 1.0;
            weighted_acc += workers[worker];
        }
    }
    if votes_total > 0.0 && weighted_acc / votes_total < 0.5 {
        for acc in workers.values_mut() {
            *acc = 1.0 - *acc;
        }
        for p in posteriors.values_mut() {
            *p = 1.0 - *p;
        }
    }

    let answers = tasks
        .keys()
        .map(|task| {
            let p = posteriors[task];
            AggregatedAnswer {
                task: *task,
                prob_true: p,
                value: p >= 0.5,
                votes: tasks[task].len(),
            }
        })
        .collect();
    Ok(EmEstimate {
        answers,
        worker_accuracy: workers,
        iterations,
    })
}

impl EmEstimate {
    /// Marginal log-likelihood (nats) of raw answers under this estimate's
    /// worker accuracies, task truths integrated out with `prior_true`.
    /// Useful for comparing aggregation models on held-out batches.
    pub fn log_likelihood(&self, answers: &[Answer], prior_true: f64) -> f64 {
        let mut tasks: BTreeMap<TaskId, Vec<(WorkerId, bool)>> = BTreeMap::new();
        for a in answers {
            tasks.entry(a.task).or_default().push((a.worker, a.value));
        }
        // Workers unseen during estimation count as chance-level.
        let workers: BTreeMap<WorkerId, f64> = tasks
            .values()
            .flatten()
            .map(|(w, _)| (*w, self.worker_accuracy.get(w).copied().unwrap_or(0.5)))
            .collect();
        marginal_log_likelihood(&tasks, &workers, prior_true)
    }
}

type EmRun = (BTreeMap<WorkerId, f64>, BTreeMap<TaskId, f64>, usize);

/// One EM run from the given initial per-task posteriors.
fn run_em(
    tasks: &BTreeMap<TaskId, Vec<(WorkerId, bool)>>,
    init_posteriors: BTreeMap<TaskId, f64>,
    prior_true: f64,
    max_iters: usize,
    tolerance: f64,
) -> EmRun {
    let prior_logit =
        ((prior_true.clamp(1e-6, 1.0 - 1e-6)) / (1.0 - prior_true.clamp(1e-6, 1.0 - 1e-6))).ln();
    let mut posteriors = init_posteriors;
    let mut workers: BTreeMap<WorkerId, f64> = BTreeMap::new();
    let mut iterations = 0;

    for iter in 0..max_iters.max(1) {
        iterations = iter + 1;
        // M step: worker accuracy = expected agreement with posteriors.
        let mut deltas = 0.0f64;
        let mut agreement: BTreeMap<WorkerId, (f64, f64)> = BTreeMap::new();
        for (task, votes) in tasks {
            let p = posteriors[task];
            for (worker, value) in votes {
                let e = agreement.entry(*worker).or_insert((0.0, 0.0));
                e.0 += if *value { p } else { 1.0 - p };
                e.1 += 1.0;
            }
        }
        for (worker, (agree, total)) in agreement {
            let new = (agree / total).clamp(0.05, 0.95);
            let old = workers.insert(worker, new).unwrap_or(0.8);
            deltas = deltas.max((new - old).abs());
        }
        // E step: per-task posterior from current worker accuracies.
        for (task, votes) in tasks {
            let mut logit = prior_logit;
            for (worker, value) in votes {
                let acc = workers[worker];
                let weight = (acc / (1.0 - acc)).ln();
                logit += if *value { weight } else { -weight };
            }
            posteriors.insert(*task, 1.0 / (1.0 + (-logit).exp()));
        }
        if deltas < tolerance && iter > 0 {
            break;
        }
    }
    (workers, posteriors, iterations)
}

/// Marginal log-likelihood of the observed votes under the given worker
/// accuracies, with the task truths integrated out.
fn marginal_log_likelihood(
    tasks: &BTreeMap<TaskId, Vec<(WorkerId, bool)>>,
    workers: &BTreeMap<WorkerId, f64>,
    prior_true: f64,
) -> f64 {
    let prior = prior_true.clamp(1e-6, 1.0 - 1e-6);
    let mut total = 0.0;
    for votes in tasks.values() {
        let mut log_true = 0.0f64;
        let mut log_false = 0.0f64;
        for (worker, value) in votes {
            let acc = workers[worker];
            if *value {
                log_true += acc.ln();
                log_false += (1.0 - acc).ln();
            } else {
                log_true += (1.0 - acc).ln();
                log_false += acc.ln();
            }
        }
        // log(prior·e^{log_true} + (1−prior)·e^{log_false}), stabilised.
        let a = prior.ln() + log_true;
        let b = (1.0 - prior).ln() + log_false;
        let m = a.max(b);
        total += m + ((a - m).exp() + (b - m).exp()).ln();
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::answer::{AnswerModel, SkillAccuracy};
    use crate::platform::CrowdPlatform;
    use crate::task::Task;
    use crate::worker::WorkerPool;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn answer(task: u64, worker: u32, value: bool) -> Answer {
        Answer {
            task: TaskId(task),
            worker: WorkerId(worker),
            value,
        }
    }

    #[test]
    fn majority_aggregates_per_task() {
        let answers = vec![
            answer(0, 0, true),
            answer(0, 1, true),
            answer(0, 2, false),
            answer(1, 0, false),
        ];
        let agg = majority_aggregate(&answers);
        assert_eq!(agg.len(), 2);
        assert!(agg[0].value);
        assert_eq!(agg[0].votes, 3);
        assert!((agg[0].prob_true - 2.0 / 3.0).abs() < 1e-12);
        assert!(!agg[1].value);
    }

    #[test]
    fn em_recovers_worker_quality_without_gold() {
        // Three good workers (0.9), one adversarially bad (0.2), 200 tasks.
        let mut rng = StdRng::seed_from_u64(5);
        let accuracies = [0.9, 0.9, 0.9, 0.2];
        let mut answers = Vec::new();
        let mut truths = Vec::new();
        for t in 0..200u64 {
            let truth = rng.gen_bool(0.5);
            truths.push(truth);
            for (w, &acc) in accuracies.iter().enumerate() {
                let correct = rng.gen_bool(acc);
                answers.push(answer(t, w as u32, if correct { truth } else { !truth }));
            }
        }
        let est = em_aggregate(&answers, 0.5, 50, 1e-6).unwrap();
        // Majority of the task posteriors should match the hidden truth.
        let correct = est
            .answers
            .iter()
            .zip(&truths)
            .filter(|(a, &t)| a.value == t)
            .count();
        assert!(
            correct as f64 / truths.len() as f64 > 0.95,
            "EM accuracy {}",
            correct as f64 / truths.len() as f64
        );
        // Worker accuracies separate good from bad.
        for w in 0..3 {
            assert!(est.worker_accuracy[&WorkerId(w)] > 0.8);
        }
        // The adversarial worker is pushed to the model floor (Definition 2
        // does not admit below-chance workers), i.e. ignored.
        assert!(est.worker_accuracy[&WorkerId(3)] < 0.55);
    }

    #[test]
    fn em_beats_majority_with_a_bad_worker_majority() {
        // Two good workers vs three coordinated bad ones: plain majority is
        // usually wrong, EM should discount the bad block.
        let mut rng = StdRng::seed_from_u64(11);
        let accuracies = [0.95, 0.95, 0.25, 0.25, 0.25];
        let mut answers = Vec::new();
        let mut truths = Vec::new();
        for t in 0..300u64 {
            let truth = rng.gen_bool(0.5);
            truths.push(truth);
            for (w, &acc) in accuracies.iter().enumerate() {
                let correct = rng.gen_bool(acc);
                answers.push(answer(t, w as u32, if correct { truth } else { !truth }));
            }
        }
        let acc_of = |agg: &[AggregatedAnswer]| {
            agg.iter()
                .zip(&truths)
                .filter(|(a, &t)| a.value == t)
                .count() as f64
                / truths.len() as f64
        };
        let mv = acc_of(&majority_aggregate(&answers));
        let em = acc_of(&em_aggregate(&answers, 0.5, 50, 1e-6).unwrap().answers);
        assert!(em > mv + 0.1, "EM {em} should clearly beat majority {mv}");
    }

    #[test]
    fn log_likelihood_prefers_informative_model() {
        // Answers from a reliable 3-worker crowd: the EM estimate's
        // likelihood must beat a chance-level model of the same data.
        let mut rng = StdRng::seed_from_u64(3);
        let mut answers = Vec::new();
        for t in 0..100u64 {
            let truth = rng.gen_bool(0.5);
            for w in 0..3u32 {
                let correct = rng.gen_bool(0.9);
                answers.push(answer(t, w, if correct { truth } else { !truth }));
            }
        }
        let est = em_aggregate(&answers, 0.5, 50, 1e-6).unwrap();
        let informative = est.log_likelihood(&answers, 0.5);
        let chance = EmEstimate {
            answers: est.answers.clone(),
            worker_accuracy: est.worker_accuracy.keys().map(|w| (*w, 0.5)).collect(),
            iterations: 1,
        }
        .log_likelihood(&answers, 0.5);
        assert!(
            informative > chance + 10.0,
            "informative {informative} vs chance {chance}"
        );
        // Unseen workers are treated as chance-level (no panic).
        let foreign = vec![answer(0, 99, true)];
        let ll = est.log_likelihood(&foreign, 0.5);
        assert!(ll.is_finite());
    }

    #[test]
    fn em_validates_inputs() {
        assert!(em_aggregate(&[], 0.5, 10, 1e-6).is_err());
        assert!(em_aggregate(&[answer(0, 0, true)], 1.5, 10, 1e-6).is_err());
    }

    #[test]
    fn em_integrates_with_platform_answers() {
        // Wire the platform's raw answers straight into EM.
        let mut rng = StdRng::seed_from_u64(2);
        let pool = WorkerPool::heterogeneous(6, 0.6, 0.95, &mut rng).unwrap();
        let model = SkillAccuracy {
            nominal: pool.mean_skill(),
            ..SkillAccuracy::default()
        };
        let mut platform = CrowdPlatform::new(pool, model, 7);
        let tasks: Vec<Task> = (0..150).map(|i| Task::new(i, "q")).collect();
        let truths: Vec<bool> = (0..150).map(|i| i % 2 == 0).collect();
        // Each task answered 7 times by republishing. The drawn pool
        // averages ≈ 0.70 accuracy, so majority-of-7 lands around 0.87;
        // EM must be in the same region.
        let mut raw = Vec::new();
        for _ in 0..7 {
            raw.extend(platform.publish(&tasks, &truths).unwrap());
        }
        let est = em_aggregate(&raw, 0.5, 50, 1e-6).unwrap();
        let correct = est
            .answers
            .iter()
            .zip(&truths)
            .filter(|(a, &t)| a.value == t)
            .count();
        assert!(correct as f64 / truths.len() as f64 > 0.85);
        assert!(est.iterations >= 1);
        let _ = model.nominal_accuracy();
    }
}
