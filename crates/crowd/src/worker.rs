//! Simulated crowd workers.

use crate::error::CrowdError;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Worker identifier within a pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct WorkerId(pub u32);

/// A single crowd worker with an individual probability of answering
/// correctly. The paper's shared-`Pc` model corresponds to every worker
/// having `skill = Pc`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Worker {
    /// The worker's id.
    pub id: WorkerId,
    /// Probability of answering a clean task correctly, in `[0.5, 1]`.
    pub skill: f64,
}

/// A pool of anonymous workers, as on gMission.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkerPool {
    workers: Vec<Worker>,
}

impl WorkerPool {
    /// A pool of `count` workers sharing one accuracy — the paper's
    /// Definition 2 ("they share an accuracy rate Pc").
    pub fn uniform(count: usize, pc: f64) -> Result<WorkerPool, CrowdError> {
        if !(0.5..=1.0).contains(&pc) {
            return Err(CrowdError::AccuracyOutOfRange(pc));
        }
        Ok(WorkerPool {
            workers: (0..count)
                .map(|i| Worker {
                    id: WorkerId(i as u32),
                    skill: pc,
                })
                .collect(),
        })
    }

    /// A heterogeneous pool whose skills are drawn uniformly from
    /// `[lo, hi] ⊆ [0.5, 1]`. The pool mean approximates the `Pc` a pre-test
    /// would estimate (the paper measured ≈ 0.86 on gMission).
    pub fn heterogeneous<R: Rng + ?Sized>(
        count: usize,
        lo: f64,
        hi: f64,
        rng: &mut R,
    ) -> Result<WorkerPool, CrowdError> {
        if !(0.5..=1.0).contains(&lo) || !(0.5..=1.0).contains(&hi) || lo > hi {
            return Err(CrowdError::AccuracyOutOfRange(if lo > hi {
                lo
            } else {
                hi
            }));
        }
        Ok(WorkerPool {
            workers: (0..count)
                .map(|i| Worker {
                    id: WorkerId(i as u32),
                    skill: if lo == hi { lo } else { rng.gen_range(lo..=hi) },
                })
                .collect(),
        })
    }

    /// The workers in id order.
    pub fn workers(&self) -> &[Worker] {
        &self.workers
    }

    /// Number of workers.
    pub fn len(&self) -> usize {
        self.workers.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.workers.is_empty()
    }

    /// Mean worker skill.
    pub fn mean_skill(&self) -> f64 {
        if self.workers.is_empty() {
            return 0.0;
        }
        self.workers.iter().map(|w| w.skill).sum::<f64>() / self.workers.len() as f64
    }

    /// Picks a uniformly random worker (anonymous assignment, as on
    /// gMission where any online worker may pick up a task).
    pub fn pick<R: Rng + ?Sized>(&self, rng: &mut R) -> Result<Worker, CrowdError> {
        if self.workers.is_empty() {
            return Err(CrowdError::NoWorkers);
        }
        Ok(self.workers[rng.gen_range(0..self.workers.len())])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_pool_shares_pc() {
        let p = WorkerPool::uniform(5, 0.8).unwrap();
        assert_eq!(p.len(), 5);
        assert!(p.workers().iter().all(|w| w.skill == 0.8));
        assert!((p.mean_skill() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn uniform_rejects_out_of_model_accuracy() {
        assert!(matches!(
            WorkerPool::uniform(3, 0.4),
            Err(CrowdError::AccuracyOutOfRange(_))
        ));
        assert!(matches!(
            WorkerPool::uniform(3, 1.1),
            Err(CrowdError::AccuracyOutOfRange(_))
        ));
    }

    #[test]
    fn heterogeneous_pool_within_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let p = WorkerPool::heterogeneous(100, 0.6, 0.95, &mut rng).unwrap();
        assert!(p.workers().iter().all(|w| (0.6..=0.95).contains(&w.skill)));
        let mean = p.mean_skill();
        assert!(mean > 0.7 && mean < 0.85);
    }

    #[test]
    fn heterogeneous_validates_range() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(WorkerPool::heterogeneous(3, 0.9, 0.6, &mut rng).is_err());
        assert!(WorkerPool::heterogeneous(3, 0.4, 0.9, &mut rng).is_err());
        // Degenerate equal bounds are fine.
        assert!(WorkerPool::heterogeneous(3, 0.7, 0.7, &mut rng).is_ok());
    }

    #[test]
    fn pick_requires_workers() {
        let empty = WorkerPool { workers: vec![] };
        let mut rng = StdRng::seed_from_u64(0);
        assert!(empty.is_empty());
        assert_eq!(empty.pick(&mut rng), Err(CrowdError::NoWorkers));
        let p = WorkerPool::uniform(2, 0.9).unwrap();
        let w = p.pick(&mut rng).unwrap();
        assert!(w.id.0 < 2);
    }
}
