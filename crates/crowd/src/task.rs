//! Crowd tasks: true/false judgments about single facts.
//!
//! "We take judgment of one fact as our task to get higher accuracy"
//! (paper Section I): a task shows the worker one fact triple and asks
//! whether it is true.

use serde::{Deserialize, Serialize};

/// Globally unique task identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TaskId(pub u64);

/// The paper's Section V-D statement taxonomy. `Clean` statements are
/// answered with the base crowd accuracy; the three confusion classes were
/// observed to degrade (or even invert) worker accuracy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum TaskClass {
    /// An unambiguous statement.
    #[default]
    Clean,
    /// A true statement whose author list is reordered relative to the cover
    /// ("the most significant error judgment … a lot of false negatives").
    WrongOrder,
    /// A false statement that adds organisation/publisher information
    /// ("more than 40 % of workers consider such a statement as true").
    AdditionalInfo,
    /// A false statement with a misspelled name ("for some statement the
    /// correct rate is even lower than 50 %").
    Misspelling,
}

impl TaskClass {
    /// All classes, for iteration in reports.
    pub const ALL: [TaskClass; 4] = [
        TaskClass::Clean,
        TaskClass::WrongOrder,
        TaskClass::AdditionalInfo,
        TaskClass::Misspelling,
    ];

    /// Human-readable label used in experiment output.
    pub fn label(self) -> &'static str {
        match self {
            TaskClass::Clean => "clean",
            TaskClass::WrongOrder => "wrong-order",
            TaskClass::AdditionalInfo => "additional-info",
            TaskClass::Misspelling => "misspelling",
        }
    }
}

/// A true/false judgment task about one fact.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Task {
    /// Unique id.
    pub id: TaskId,
    /// The question shown to workers, e.g.
    /// `Is "Hong Kong, Continent, Asia" true?`.
    pub prompt: String,
    /// Statement class driving difficulty-aware answer models.
    pub class: TaskClass,
}

impl Task {
    /// Convenience constructor for a clean task.
    pub fn new(id: u64, prompt: impl Into<String>) -> Task {
        Task {
            id: TaskId(id),
            prompt: prompt.into(),
            class: TaskClass::Clean,
        }
    }

    /// Sets the statement class.
    #[must_use]
    pub fn with_class(mut self, class: TaskClass) -> Task {
        self.class = class;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_to_clean() {
        let t = Task::new(7, "Is X true?");
        assert_eq!(t.id, TaskId(7));
        assert_eq!(t.class, TaskClass::Clean);
        let t = t.with_class(TaskClass::Misspelling);
        assert_eq!(t.class, TaskClass::Misspelling);
    }

    #[test]
    fn class_labels_are_distinct() {
        let labels: std::collections::HashSet<_> =
            TaskClass::ALL.iter().map(|c| c.label()).collect();
        assert_eq!(labels.len(), 4);
    }
}
