//! Crowd tasks: true/false judgments about single facts.
//!
//! "We take judgment of one fact as our task to get higher accuracy"
//! (paper Section I): a task shows the worker one fact triple and asks
//! whether it is true.

use serde::{Deserialize, Serialize};

/// Globally unique task identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TaskId(pub u64);

/// The paper's Section V-D statement taxonomy. `Clean` statements are
/// answered with the base crowd accuracy; the three confusion classes were
/// observed to degrade (or even invert) worker accuracy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum TaskClass {
    /// An unambiguous statement.
    #[default]
    Clean,
    /// A true statement whose author list is reordered relative to the cover
    /// ("the most significant error judgment … a lot of false negatives").
    WrongOrder,
    /// A false statement that adds organisation/publisher information
    /// ("more than 40 % of workers consider such a statement as true").
    AdditionalInfo,
    /// A false statement with a misspelled name ("for some statement the
    /// correct rate is even lower than 50 %").
    Misspelling,
}

impl TaskClass {
    /// All classes, for iteration in reports.
    pub const ALL: [TaskClass; 4] = [
        TaskClass::Clean,
        TaskClass::WrongOrder,
        TaskClass::AdditionalInfo,
        TaskClass::Misspelling,
    ];

    /// Human-readable label used in experiment output.
    pub fn label(self) -> &'static str {
        match self {
            TaskClass::Clean => "clean",
            TaskClass::WrongOrder => "wrong-order",
            TaskClass::AdditionalInfo => "additional-info",
            TaskClass::Misspelling => "misspelling",
        }
    }
}

/// A true/false judgment task about one fact.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Task {
    /// Unique id.
    pub id: TaskId,
    /// The question shown to workers, e.g.
    /// `Is "Hong Kong, Continent, Asia" true?`.
    pub prompt: String,
    /// Statement class driving difficulty-aware answer models.
    pub class: TaskClass,
}

impl Task {
    /// Convenience constructor for a clean task.
    pub fn new(id: u64, prompt: impl Into<String>) -> Task {
        Task {
            id: TaskId(id),
            prompt: prompt.into(),
            class: TaskClass::Clean,
        }
    }

    /// Sets the statement class.
    #[must_use]
    pub fn with_class(mut self, class: TaskClass) -> Task {
        self.class = class;
        self
    }
}

/// One entity's contribution to a global crowdsourcing round: its selected
/// tasks, their hidden ground truths, and the index of the answer stream
/// that must serve it (see
/// [`AnswerStreams`](crate::platform::AnswerStreams)).
#[derive(Debug, Clone, PartialEq)]
pub struct BatchGroup {
    /// Index of the per-entity answer stream this group draws from.
    pub stream: usize,
    /// The tasks published for this entity this round.
    pub tasks: Vec<Task>,
    /// Hidden ground truths, parallel to `tasks`.
    pub truths: Vec<bool>,
}

/// Every entity's task batch for **one global round** — the paper's "one
/// global round asks every entity's batch" (Section V-A): instead of one
/// platform round trip per entity per round, the experiment driver
/// collects each entity's selected task set into a `RoundBatch` and
/// publishes them all with a single
/// [`CrowdPlatform::publish_batch`](crate::platform::CrowdPlatform::publish_batch)
/// call. Answers come back grouped per entity (the demux), drawn from
/// per-entity streams so they are bit-identical to per-entity publishing.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RoundBatch {
    groups: Vec<BatchGroup>,
}

impl RoundBatch {
    /// An empty batch.
    pub fn new() -> RoundBatch {
        RoundBatch::default()
    }

    /// Appends one entity's task set for this round. Group order is the
    /// demux order: answers to the `i`-th pushed group come back at index
    /// `i` of `publish_batch`'s result.
    pub fn push_group(&mut self, stream: usize, tasks: Vec<Task>, truths: Vec<bool>) {
        self.groups.push(BatchGroup {
            stream,
            tasks,
            truths,
        });
    }

    /// The per-entity groups, in push order.
    pub fn groups(&self) -> &[BatchGroup] {
        &self.groups
    }

    /// Number of entity groups in the batch.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// Whether no entity contributed tasks this round.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// Total judgments this round trip will cost (one per task).
    pub fn task_count(&self) -> usize {
        self.groups.iter().map(|g| g.tasks.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_to_clean() {
        let t = Task::new(7, "Is X true?");
        assert_eq!(t.id, TaskId(7));
        assert_eq!(t.class, TaskClass::Clean);
        let t = t.with_class(TaskClass::Misspelling);
        assert_eq!(t.class, TaskClass::Misspelling);
    }

    #[test]
    fn class_labels_are_distinct() {
        let labels: std::collections::HashSet<_> =
            TaskClass::ALL.iter().map(|c| c.label()).collect();
        assert_eq!(labels.len(), 4);
    }

    #[test]
    fn round_batch_accumulates_groups_in_push_order() {
        let mut batch = RoundBatch::new();
        assert!(batch.is_empty());
        assert_eq!(batch.task_count(), 0);
        batch.push_group(
            2,
            vec![Task::new(0, "a"), Task::new(1, "b")],
            vec![true, false],
        );
        batch.push_group(0, vec![Task::new(2, "c")], vec![true]);
        assert_eq!(batch.len(), 2);
        assert_eq!(batch.task_count(), 3);
        assert_eq!(batch.groups()[0].stream, 2);
        assert_eq!(batch.groups()[1].stream, 0);
    }
}
