//! Answer models: how likely a worker answers a task correctly.

use crate::task::{Task, TaskClass};
use crate::worker::{Worker, WorkerId};
use serde::{Deserialize, Serialize};

/// A collected crowd answer to one task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Answer {
    /// The answered task.
    pub task: crate::task::TaskId,
    /// The worker who produced the judgment.
    pub worker: WorkerId,
    /// The judgment: `true` = "the fact is true".
    pub value: bool,
}

/// Probability that a given worker answers a given task correctly.
///
/// Implementations must return values in `(0, 1]`; the platform draws the
/// answer as `truth` with this probability and `!truth` otherwise — exactly
/// the Bernoulli channel of the paper's Definition 2.
pub trait AnswerModel {
    /// Probability of a correct judgment for `(worker, task)`.
    fn prob_correct(&self, worker: &Worker, task: &Task) -> f64;

    /// The accuracy a groundtruth pre-test over clean tasks would estimate
    /// for an average worker. Used by experiments that must *assume* a `Pc`.
    fn nominal_accuracy(&self) -> f64;
}

/// The paper's Definition 2: every (worker, task) pair shares one fixed
/// accuracy `Pc`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UniformAccuracy {
    /// The shared crowd accuracy `Pc ∈ [0.5, 1]`.
    pub pc: f64,
}

impl UniformAccuracy {
    /// Creates the model, clamping into the paper's `[0.5, 1]` model range.
    pub fn new(pc: f64) -> UniformAccuracy {
        UniformAccuracy {
            pc: pc.clamp(0.5, 1.0),
        }
    }
}

impl AnswerModel for UniformAccuracy {
    fn prob_correct(&self, _worker: &Worker, _task: &Task) -> f64 {
        self.pc
    }

    fn nominal_accuracy(&self) -> f64 {
        self.pc
    }
}

/// Per-statement-class accuracies reproducing the paper's Section V-D
/// observations: confusing statements pull worker accuracy toward (or below)
/// chance regardless of the base `Pc`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClassAccuracy {
    /// Accuracy on clean statements (the nominal `Pc`).
    pub clean: f64,
    /// Accuracy on reordered-but-true lists ("Wrong Order": high diversity
    /// of answers; many false negatives).
    pub wrong_order: f64,
    /// Accuracy on false lists with added organisation info ("more than
    /// 40 % of workers consider such a statement as true" → accuracy < 0.6).
    pub additional_info: f64,
    /// Accuracy on misspelled lists ("correct rate … even lower than 50 %").
    pub misspelling: f64,
}

impl ClassAccuracy {
    /// The paper-calibrated default for a given clean-task accuracy.
    ///
    /// Section V-D: wrong-order statements draw highly diverse answers
    /// (≈ 0.55), additional-info statements fool > 40 % of workers (≈ 0.58)
    /// and misspellings dip below chance (≈ 0.45).
    pub fn paper_defaults(clean: f64) -> ClassAccuracy {
        ClassAccuracy {
            clean: clean.clamp(0.5, 1.0),
            wrong_order: 0.55,
            additional_info: 0.58,
            misspelling: 0.45,
        }
    }

    /// Accuracy for one class.
    pub fn for_class(&self, class: TaskClass) -> f64 {
        match class {
            TaskClass::Clean => self.clean,
            TaskClass::WrongOrder => self.wrong_order,
            TaskClass::AdditionalInfo => self.additional_info,
            TaskClass::Misspelling => self.misspelling,
        }
    }
}

impl AnswerModel for ClassAccuracy {
    fn prob_correct(&self, _worker: &Worker, task: &Task) -> f64 {
        self.for_class(task.class).clamp(0.01, 1.0)
    }

    fn nominal_accuracy(&self) -> f64 {
        self.clean
    }
}

/// Every worker answers with their individual skill; task class scales the
/// skill's distance from chance (a confusing task halves the margin, etc.).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SkillAccuracy {
    /// Multiplier on the worker's margin above 0.5 for each confusion class
    /// (clean tasks use 1.0). Negative margins model systematically wrong
    /// judgments.
    pub wrong_order_factor: f64,
    /// Margin multiplier for additional-info statements.
    pub additional_info_factor: f64,
    /// Margin multiplier for misspellings.
    pub misspelling_factor: f64,
    /// Fallback `Pc` reported to planners.
    pub nominal: f64,
}

impl Default for SkillAccuracy {
    fn default() -> SkillAccuracy {
        SkillAccuracy {
            wrong_order_factor: 0.2,
            additional_info_factor: 0.25,
            misspelling_factor: -0.15,
            nominal: 0.8,
        }
    }
}

impl AnswerModel for SkillAccuracy {
    fn prob_correct(&self, worker: &Worker, task: &Task) -> f64 {
        let margin = worker.skill - 0.5;
        let factor = match task.class {
            TaskClass::Clean => 1.0,
            TaskClass::WrongOrder => self.wrong_order_factor,
            TaskClass::AdditionalInfo => self.additional_info_factor,
            TaskClass::Misspelling => self.misspelling_factor,
        };
        (0.5 + margin * factor).clamp(0.01, 1.0)
    }

    fn nominal_accuracy(&self) -> f64 {
        self.nominal
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::Task;

    fn worker(skill: f64) -> Worker {
        Worker {
            id: WorkerId(0),
            skill,
        }
    }

    #[test]
    fn uniform_accuracy_ignores_worker_and_task() {
        let m = UniformAccuracy::new(0.8);
        let t = Task::new(0, "q").with_class(TaskClass::Misspelling);
        assert_eq!(m.prob_correct(&worker(0.99), &t), 0.8);
        assert_eq!(m.nominal_accuracy(), 0.8);
        // Clamped into the model range.
        assert_eq!(UniformAccuracy::new(0.2).pc, 0.5);
        assert_eq!(UniformAccuracy::new(1.7).pc, 1.0);
    }

    #[test]
    fn class_accuracy_paper_defaults_degrade_confusing_classes() {
        let m = ClassAccuracy::paper_defaults(0.86);
        let clean = Task::new(0, "q");
        let miss = Task::new(1, "q").with_class(TaskClass::Misspelling);
        let order = Task::new(2, "q").with_class(TaskClass::WrongOrder);
        let info = Task::new(3, "q").with_class(TaskClass::AdditionalInfo);
        let w = worker(0.86);
        assert!(m.prob_correct(&w, &clean) > m.prob_correct(&w, &order));
        assert!(m.prob_correct(&w, &order) > m.prob_correct(&w, &miss));
        // Misspellings are below chance, as the paper reports.
        assert!(m.prob_correct(&w, &miss) < 0.5);
        assert!(m.prob_correct(&w, &info) < 0.6);
        assert_eq!(m.nominal_accuracy(), 0.86);
    }

    #[test]
    fn skill_accuracy_scales_margin() {
        let m = SkillAccuracy::default();
        let sharp = worker(0.9);
        let clean = Task::new(0, "q");
        let miss = Task::new(1, "q").with_class(TaskClass::Misspelling);
        assert!((m.prob_correct(&sharp, &clean) - 0.9).abs() < 1e-12);
        // Negative factor => below-chance answers on misspellings.
        assert!(m.prob_correct(&sharp, &miss) < 0.5);
        // A chance-level worker stays at chance on every class.
        let coin = worker(0.5);
        assert!((m.prob_correct(&coin, &miss) - 0.5).abs() < 1e-12);
    }
}
