//! Transport loops: the daemon over TCP (`std::net`) and over stdio.
//!
//! Both speak the same framing — one JSON request per line in, one JSON
//! response per line out. TCP serves many concurrent connections
//! (thread-per-connection over the shared [`Service`]); per-session
//! determinism is untouched by connection interleaving because every
//! session owns its RNG streams. A `Shutdown` request stops the daemon:
//! the handling connection sets the flag and pokes the accept loop awake
//! with a throwaway connection to its own address.

use crate::service::Service;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::thread;

/// Serves one already-connected byte stream (the shared line loop).
fn serve_lines(service: &Service, input: impl BufRead, mut output: impl Write) -> io::Result<()> {
    for line in input.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let reply = service.handle_line(&line);
        output.write_all(reply.as_bytes())?;
        output.write_all(b"\n")?;
        output.flush()?;
        if service.shutdown_requested() {
            break;
        }
    }
    Ok(())
}

/// Serves the daemon over stdin/stdout (or any reader/writer pair) until
/// EOF or `Shutdown`.
pub fn serve_stdio(service: &Service, input: impl BufRead, output: impl Write) -> io::Result<()> {
    serve_lines(service, input, output)
}

fn serve_connection(service: &Service, stream: TcpStream, local: SocketAddr) {
    let Ok(reader) = stream.try_clone() else {
        return;
    };
    let _ = serve_lines(service, BufReader::new(reader), BufWriter::new(stream));
    // If this connection carried the Shutdown, the accept loop may be
    // blocked; a throwaway connection wakes it so it can observe the flag.
    // A wildcard bind (0.0.0.0 / ::) is not connectable on every
    // platform, so the poke targets the matching loopback instead.
    if service.shutdown_requested() {
        let mut poke = local;
        if poke.ip().is_unspecified() {
            poke.set_ip(match poke {
                SocketAddr::V4(_) => std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST),
                SocketAddr::V6(_) => std::net::IpAddr::V6(std::net::Ipv6Addr::LOCALHOST),
            });
        }
        let _ = TcpStream::connect(poke);
    }
}

/// One live connection: its handler thread plus a stream clone the
/// daemon can force-close at shutdown.
struct Connection {
    handle: thread::JoinHandle<()>,
    stream: TcpStream,
}

/// Serves the daemon over TCP until a `Shutdown` request arrives.
/// Returns the number of connections accepted (the wake-up poke, if any,
/// is not counted).
///
/// The daemon is long-lived, so the accept loop must neither leak nor
/// die: finished connections are reaped (handle joined, stream clone
/// dropped) on every accept, bounding resource use by *concurrent* — not
/// lifetime-total — connections, and a transient `accept` failure
/// (`ECONNABORTED`, fd pressure, …) is logged and retried instead of
/// tearing down every in-memory session. On shutdown every still-open
/// connection is closed, so idle clients cannot keep the daemon alive.
pub fn serve_tcp(service: Arc<Service>, listener: TcpListener) -> io::Result<usize> {
    let local = listener.local_addr()?;
    let mut connections: Vec<Connection> = Vec::new();
    let mut accepted = 0usize;
    for stream in listener.incoming() {
        if service.shutdown_requested() {
            break;
        }
        let stream = match stream {
            Ok(stream) => stream,
            Err(e) => {
                eprintln!("crowdfusion-serve: accept failed (retrying): {e}");
                // Back off briefly so a persistent error (e.g. fd
                // exhaustion) cannot spin the loop hot.
                thread::sleep(std::time::Duration::from_millis(50));
                continue;
            }
        };
        accepted += 1;
        // Reap connections whose handler already exited.
        connections.retain(|c| !c.handle.is_finished());
        let Ok(clone) = stream.try_clone() else {
            continue; // the connection is unusable; drop it
        };
        let service = Arc::clone(&service);
        connections.push(Connection {
            // analyze: allow(adhoc-thread) — connection plumbing, not
            // computation: refinement work inside a session still runs on
            // the session's pool, so traces stay schedule-independent.
            handle: thread::spawn(move || {
                serve_connection(&service, stream, local);
            }),
            stream: clone,
        });
    }
    // Unblock handler threads still parked on idle connections: their
    // reads return EOF and the threads exit.
    for connection in &connections {
        let _ = connection.stream.shutdown(Shutdown::Both);
    }
    for connection in connections {
        let _ = connection.handle.join();
    }
    Ok(accepted)
}

/// A line-oriented TCP client for the daemon — what `loadgen`, the CI
/// smoke test and ad-hoc drivers use.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    /// Connects to a daemon.
    pub fn connect(addr: SocketAddr) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            reader,
            writer: BufWriter::new(stream),
        })
    }

    /// Sends one request line and reads one response line.
    pub fn roundtrip(
        &mut self,
        request: &crate::protocol::Request,
    ) -> io::Result<crate::protocol::Response> {
        let line = crate::protocol::encode(request);
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut reply = String::new();
        if self.reader.read_line(&mut reply)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "daemon closed the connection",
            ));
        }
        crate::protocol::decode(reply.trim_end())
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{Request, Response};
    use crate::service::{SelectorChoice, ServiceConfig};
    use crowdfusion_core::round::RoundConfig;

    #[test]
    fn stdio_loop_answers_line_per_line_and_stops_on_shutdown() {
        let service = Service::new(ServiceConfig {
            seed: 1,
            defaults: RoundConfig::new(2, 4, 0.8).unwrap(),
            threads: 1,
            selector: SelectorChoice::Random,
            snapshot_dir: None,
        });
        let input = format!(
            "{}\n\n{}\n{}\n{}\n",
            crate::protocol::encode(&Request::Metrics),
            crate::protocol::encode(&Request::Shutdown),
            // Never reached: the loop stops after Bye.
            crate::protocol::encode(&Request::Metrics),
            crate::protocol::encode(&Request::Metrics),
        );
        let mut output = Vec::new();
        serve_stdio(&service, input.as_bytes(), &mut output).unwrap();
        let text = String::from_utf8(output).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2, "metrics + bye, then stop: {text:?}");
        assert_eq!(
            crate::protocol::decode::<Response>(lines[1]).unwrap(),
            Response::Bye
        );
    }
}
