//! Transport loops: the daemon over TCP (`std::net`) and over stdio.
//!
//! Both speak the same framing — one JSON request per line in, one JSON
//! response per line out. TCP serves many concurrent connections
//! (thread-per-connection over the shared [`Service`]); per-session
//! determinism is untouched by connection interleaving because every
//! session owns its RNG streams. A `Shutdown` request stops the daemon:
//! the handling connection sets the flag and pokes the accept loop awake
//! with a throwaway connection to its own address.
//!
//! The reader is hardened against misbehaving peers: lines are read
//! through a bounded accumulator (an oversized line is drained and
//! answered with a protocol error instead of ballooning daemon memory),
//! invalid UTF-8 gets an error response rather than a disconnect, and an
//! optional read deadline closes connections that go silent mid-session.
//! One connection's garbage never disturbs another's session state.

use crate::fault::{FaultAction, FaultPoint};
use crate::protocol::{Request, Response};
use crate::service::Service;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// One bounded read off the wire.
enum LineRead {
    /// A complete line within the cap (without its newline).
    Line(Vec<u8>),
    /// The line exceeded the cap; the excess was drained to its newline.
    Oversized,
    /// Clean end of stream.
    Eof,
}

/// Reads one `\n`-terminated line, never buffering more than `max` bytes.
/// An over-long line is discarded up to (and including) its newline so the
/// connection can keep serving subsequent requests.
fn read_line_bounded(input: &mut impl BufRead, max: usize) -> io::Result<LineRead> {
    let mut line: Vec<u8> = Vec::new();
    loop {
        let chunk = input.fill_buf()?;
        if chunk.is_empty() {
            return if line.is_empty() {
                Ok(LineRead::Eof)
            } else {
                // An unterminated final line still counts (stdio pipes).
                Ok(LineRead::Line(line))
            };
        }
        if let Some(pos) = chunk.iter().position(|&b| b == b'\n') {
            if line.len() + pos > max {
                input.consume(pos + 1);
                return Ok(LineRead::Oversized);
            }
            line.extend_from_slice(&chunk[..pos]);
            input.consume(pos + 1);
            return Ok(LineRead::Line(line));
        }
        let take = chunk.len();
        if line.len() + take > max {
            // Over the cap with no newline in sight: drop what we hold and
            // drain the rest of the line without accumulating it.
            line.clear();
            line.shrink_to_fit();
            input.consume(take);
            loop {
                let chunk = input.fill_buf()?;
                if chunk.is_empty() {
                    return Ok(LineRead::Oversized);
                }
                match chunk.iter().position(|&b| b == b'\n') {
                    Some(pos) => {
                        input.consume(pos + 1);
                        return Ok(LineRead::Oversized);
                    }
                    None => {
                        let len = chunk.len();
                        input.consume(len);
                    }
                }
            }
        }
        line.extend_from_slice(chunk);
        input.consume(take);
    }
}

/// Whether a read error means "the peer went quiet past the deadline".
fn is_deadline(err: &io::Error) -> bool {
    matches!(
        err.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Serves one already-connected byte stream (the shared line loop).
fn serve_lines(
    service: &Service,
    mut input: impl BufRead,
    mut output: impl Write,
) -> io::Result<()> {
    let max = service.max_line_bytes();
    loop {
        let read = match read_line_bounded(&mut input, max) {
            Ok(read) => read,
            // A deadline expiry is a normal close, not a transport error.
            Err(err) if is_deadline(&err) => return Ok(()),
            Err(err) => return Err(err),
        };
        // Injected connection fault: drop the link as though the network
        // did, leaving whatever the service already applied in place —
        // the at-least-once story the client retry layer is tested under.
        if let Some(FaultAction::Drop) = service.fault_plan().check(FaultPoint::ConnectionRead) {
            return Ok(());
        }
        let reply = match read {
            LineRead::Eof => return Ok(()),
            LineRead::Oversized => crate::protocol::encode(&Response::Error {
                message: format!("protocol line exceeds the {max}-byte limit"),
            }),
            LineRead::Line(bytes) => match String::from_utf8(bytes) {
                Err(_) => crate::protocol::encode(&Response::Error {
                    message: "protocol line is not valid UTF-8".to_string(),
                }),
                Ok(line) if line.trim().is_empty() => continue,
                Ok(line) => service.handle_line(&line),
            },
        };
        output.write_all(reply.as_bytes())?;
        output.write_all(b"\n")?;
        output.flush()?;
        if service.shutdown_requested() {
            return Ok(());
        }
    }
}

/// Serves the daemon over stdin/stdout (or any reader/writer pair) until
/// EOF or `Shutdown`.
pub fn serve_stdio(service: &Service, input: impl BufRead, output: impl Write) -> io::Result<()> {
    serve_lines(service, input, output)
}

fn serve_connection(service: &Service, stream: TcpStream, local: SocketAddr) {
    // A connection that goes silent past the deadline is closed; its
    // sessions stay (TTL eviction owns their lifetime, not the socket's).
    if let Some(ms) = service.read_deadline_ms() {
        let _ = stream.set_read_timeout(Some(Duration::from_millis(ms)));
    }
    let Ok(reader) = stream.try_clone() else {
        return;
    };
    let Ok(closer) = stream.try_clone() else {
        return;
    };
    let _ = serve_lines(service, BufReader::new(reader), BufWriter::new(stream));
    // The accept loop holds its own clone of this socket (to force-close
    // idle peers at daemon shutdown), and clones keep the connection open
    // after our reader/writer drop. Shut the socket itself down so the
    // peer sees EOF the moment this handler is done with it.
    let _ = closer.shutdown(Shutdown::Both);
    // If this connection carried the Shutdown, the accept loop may be
    // blocked; a throwaway connection wakes it so it can observe the flag.
    // A wildcard bind (0.0.0.0 / ::) is not connectable on every
    // platform, so the poke targets the matching loopback instead.
    if service.shutdown_requested() {
        let mut poke = local;
        if poke.ip().is_unspecified() {
            poke.set_ip(match poke {
                SocketAddr::V4(_) => std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST),
                SocketAddr::V6(_) => std::net::IpAddr::V6(std::net::Ipv6Addr::LOCALHOST),
            });
        }
        let _ = TcpStream::connect(poke);
    }
}

/// One live connection: its handler thread plus a stream clone the
/// daemon can force-close at shutdown.
struct Connection {
    handle: thread::JoinHandle<()>,
    stream: TcpStream,
}

/// Serves the daemon over TCP until a `Shutdown` request arrives.
/// Returns the number of connections accepted (the wake-up poke, if any,
/// is not counted).
///
/// The daemon is long-lived, so the accept loop must neither leak nor
/// die: finished connections are reaped (handle joined, stream clone
/// dropped) on every accept, bounding resource use by *concurrent* — not
/// lifetime-total — connections, and a transient `accept` failure
/// (`ECONNABORTED`, fd pressure, …) is logged and retried instead of
/// tearing down every in-memory session. On shutdown every still-open
/// connection is closed, so idle clients cannot keep the daemon alive.
pub fn serve_tcp(service: Arc<Service>, listener: TcpListener) -> io::Result<usize> {
    let local = listener.local_addr()?;
    let mut connections: Vec<Connection> = Vec::new();
    let mut accepted = 0usize;
    for stream in listener.incoming() {
        if service.shutdown_requested() {
            break;
        }
        let stream = match stream {
            Ok(stream) => stream,
            Err(e) => {
                eprintln!("crowdfusion-serve: accept failed (retrying): {e}");
                // Back off briefly so a persistent error (e.g. fd
                // exhaustion) cannot spin the loop hot.
                thread::sleep(Duration::from_millis(50));
                continue;
            }
        };
        accepted += 1;
        // Reap connections whose handler already exited.
        connections.retain(|c| !c.handle.is_finished());
        let Ok(clone) = stream.try_clone() else {
            continue; // the connection is unusable; drop it
        };
        let service = Arc::clone(&service);
        connections.push(Connection {
            // analyze: allow(adhoc-thread) — connection plumbing, not
            // computation: refinement work inside a session still runs on
            // the session's pool, so traces stay schedule-independent.
            handle: thread::spawn(move || {
                serve_connection(&service, stream, local);
            }),
            stream: clone,
        });
    }
    // Unblock handler threads still parked on idle connections: their
    // reads return EOF and the threads exit.
    for connection in &connections {
        let _ = connection.stream.shutdown(Shutdown::Both);
    }
    for connection in connections {
        let _ = connection.handle.join();
    }
    Ok(accepted)
}

/// Retry tuning for [`Client::roundtrip_retrying`]: deterministic capped
/// exponential backoff — delay before attempt `n` (0-based) is
/// `min(base_ms << n, cap_ms)`. No jitter: the daemon serialises writes
/// behind one lock, so retry storms do not compound, and determinism is
/// worth more to the test matrix than desynchronisation.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Total attempts (the first try included). Minimum 1.
    pub attempts: u32,
    /// Backoff base in milliseconds.
    pub base_ms: u64,
    /// Backoff ceiling in milliseconds.
    pub cap_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            attempts: 4,
            base_ms: 10,
            cap_ms: 500,
        }
    }
}

impl RetryPolicy {
    /// The delay before attempt `attempt` (0-based; attempt 0 never
    /// waits).
    pub fn delay_ms(&self, attempt: u32) -> u64 {
        if attempt == 0 {
            return 0;
        }
        // 128-bit intermediate: `u64 << n` silently wraps for large n
        // (checked_shl only rejects the shift count, not value overflow).
        let raw = (self.base_ms as u128) << (attempt - 1).min(64);
        raw.min(self.cap_ms as u128) as u64
    }
}

/// Whether a transport error is worth a reconnect-and-retry: the kinds a
/// dropped connection or expired deadline produce. Anything else (say,
/// a malformed response) is a real bug and surfaces immediately.
fn is_retryable(err: &io::Error) -> bool {
    matches!(
        err.kind(),
        io::ErrorKind::UnexpectedEof
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::BrokenPipe
            | io::ErrorKind::WouldBlock
            | io::ErrorKind::TimedOut
    )
}

/// A line-oriented TCP client for the daemon — what `loadgen`, the CI
/// smoke test and ad-hoc drivers use.
pub struct Client {
    addr: SocketAddr,
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    /// Connects to a daemon.
    pub fn connect(addr: SocketAddr) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            addr,
            reader,
            writer: BufWriter::new(stream),
        })
    }

    /// Drops the current connection and dials the daemon again.
    pub fn reconnect(&mut self) -> io::Result<()> {
        *self = Client::connect(self.addr)?;
        Ok(())
    }

    /// Sends one request line and reads one response line.
    pub fn roundtrip(&mut self, request: &Request) -> io::Result<Response> {
        let line = crate::protocol::encode(request);
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut reply = String::new();
        if self.reader.read_line(&mut reply)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "daemon closed the connection",
            ));
        }
        crate::protocol::decode(reply.trim_end())
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    /// [`Client::roundtrip`] under at-least-once delivery: on a dropped
    /// connection or expired deadline, reconnects and resends after the
    /// policy's capped backoff. Only safe for requests that are
    /// idempotent on redelivery — reads, `Select` on an open round,
    /// `Absorb` (session-level dedup absorbs the repeat), and `Open`
    /// carrying an idempotency token. A caller retrying a token-less
    /// `Open` gets duplicate sessions, by design.
    pub fn roundtrip_retrying(
        &mut self,
        request: &Request,
        policy: RetryPolicy,
    ) -> io::Result<Response> {
        let attempts = policy.attempts.max(1);
        let mut last = None;
        for attempt in 0..attempts {
            let delay = policy.delay_ms(attempt);
            if delay > 0 {
                thread::sleep(Duration::from_millis(delay));
            }
            if last.is_some() {
                // The old connection is dead; a failed redial counts as
                // this attempt's failure and backs off again.
                if let Err(err) = self.reconnect() {
                    last = Some(err);
                    continue;
                }
            }
            match self.roundtrip(request) {
                Ok(response) => return Ok(response),
                Err(err) if is_retryable(&err) && attempt + 1 < attempts => {
                    last = Some(err);
                }
                Err(err) => return Err(err),
            }
        }
        Err(last.expect("retry loop exits early unless every attempt failed"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{Request, Response};
    use crate::service::{SelectorChoice, ServiceConfig};
    use crowdfusion_core::round::RoundConfig;

    fn service_one() -> Service {
        Service::new(ServiceConfig::new(
            1,
            RoundConfig::new(2, 4, 0.8).unwrap(),
            1,
            SelectorChoice::Random,
        ))
        .unwrap()
    }

    fn run_lines(service: &Service, input: &[u8]) -> Vec<String> {
        let mut output = Vec::new();
        serve_stdio(service, input, &mut output).unwrap();
        String::from_utf8(output)
            .unwrap()
            .lines()
            .map(str::to_string)
            .collect()
    }

    #[test]
    fn stdio_loop_answers_line_per_line_and_stops_on_shutdown() {
        let service = service_one();
        let input = format!(
            "{}\n\n{}\n{}\n{}\n",
            crate::protocol::encode(&Request::Metrics),
            crate::protocol::encode(&Request::Shutdown),
            // Never reached: the loop stops after Bye.
            crate::protocol::encode(&Request::Metrics),
            crate::protocol::encode(&Request::Metrics),
        );
        let lines = run_lines(&service, input.as_bytes());
        assert_eq!(lines.len(), 2, "metrics + bye, then stop: {lines:?}");
        assert_eq!(
            crate::protocol::decode::<Response>(&lines[1]).unwrap(),
            Response::Bye
        );
    }

    #[test]
    fn oversized_lines_get_an_error_and_the_connection_survives() {
        let mut config = ServiceConfig::new(
            1,
            RoundConfig::new(2, 4, 0.8).unwrap(),
            1,
            SelectorChoice::Random,
        );
        config.max_line_bytes = 64;
        let service = Service::new(config).unwrap();
        // A line far past the cap (and past any single fill_buf chunk),
        // followed by a legitimate request on the SAME stream.
        let mut input = vec![b'x'; 1 << 16];
        input.push(b'\n');
        input.extend_from_slice(crate::protocol::encode(&Request::Metrics).as_bytes());
        input.push(b'\n');
        let lines = run_lines(&service, &input);
        assert_eq!(lines.len(), 2);
        let Response::Error { message } = crate::protocol::decode::<Response>(&lines[0]).unwrap()
        else {
            panic!("oversized line must answer with an error: {lines:?}");
        };
        assert!(message.contains("64-byte"), "got {message:?}");
        assert!(matches!(
            crate::protocol::decode::<Response>(&lines[1]).unwrap(),
            Response::Metrics { .. }
        ));
    }

    #[test]
    fn oversized_line_exactly_at_the_cap_boundary_is_kept() {
        let mut config = ServiceConfig::new(
            1,
            RoundConfig::new(2, 4, 0.8).unwrap(),
            1,
            SelectorChoice::Random,
        );
        let probe = crate::protocol::encode(&Request::Metrics);
        config.max_line_bytes = probe.len();
        let service = Service::new(config).unwrap();
        // Exactly at the cap: allowed. One byte over: rejected.
        let input = format!("{probe}\n {probe}\n");
        let lines = run_lines(&service, input.as_bytes());
        assert_eq!(lines.len(), 2);
        assert!(matches!(
            crate::protocol::decode::<Response>(&lines[0]).unwrap(),
            Response::Metrics { .. }
        ));
        assert!(matches!(
            crate::protocol::decode::<Response>(&lines[1]).unwrap(),
            Response::Error { .. }
        ));
    }

    #[test]
    fn invalid_utf8_gets_an_error_not_a_disconnect() {
        let service = service_one();
        let mut input = vec![0xff, 0xfe, b'{', 0x80];
        input.push(b'\n');
        input.extend_from_slice(crate::protocol::encode(&Request::Metrics).as_bytes());
        input.push(b'\n');
        let lines = run_lines(&service, &input);
        assert_eq!(lines.len(), 2);
        let Response::Error { message } = crate::protocol::decode::<Response>(&lines[0]).unwrap()
        else {
            panic!("binary junk must answer with an error");
        };
        assert!(message.contains("UTF-8"));
        assert!(matches!(
            crate::protocol::decode::<Response>(&lines[1]).unwrap(),
            Response::Metrics { .. }
        ));
    }

    #[test]
    fn unterminated_final_line_still_answers() {
        let service = service_one();
        let lines = run_lines(
            &service,
            crate::protocol::encode(&Request::Metrics).as_bytes(),
        );
        assert_eq!(lines.len(), 1);
        assert!(matches!(
            crate::protocol::decode::<Response>(&lines[0]).unwrap(),
            Response::Metrics { .. }
        ));
    }

    #[test]
    fn retry_policy_backoff_is_capped_exponential() {
        let policy = RetryPolicy {
            attempts: 8,
            base_ms: 10,
            cap_ms: 70,
        };
        let delays: Vec<u64> = (0..6).map(|a| policy.delay_ms(a)).collect();
        assert_eq!(delays, vec![0, 10, 20, 40, 70, 70]);
        // Huge attempt numbers saturate instead of overflowing.
        assert_eq!(policy.delay_ms(200), 70);
    }

    #[test]
    fn retryable_kinds_are_the_connection_failures() {
        for kind in [
            io::ErrorKind::UnexpectedEof,
            io::ErrorKind::ConnectionReset,
            io::ErrorKind::ConnectionAborted,
            io::ErrorKind::BrokenPipe,
            io::ErrorKind::WouldBlock,
            io::ErrorKind::TimedOut,
        ] {
            assert!(is_retryable(&io::Error::new(kind, "x")), "{kind:?}");
        }
        for kind in [io::ErrorKind::InvalidData, io::ErrorKind::NotFound] {
            assert!(!is_retryable(&io::Error::new(kind, "x")), "{kind:?}");
        }
    }
}
