//! Transport loops: the daemon over TCP (`std::net`) and over stdio.
//!
//! Both speak the same framing — one JSON request per line in, one JSON
//! response per line out. TCP is served by a small fixed pool of
//! *reactor* threads driving a readiness event loop (`vendor/polling`,
//! the epoll/poll stand-in) instead of a thread per connection, so ten
//! thousand idle sessions cost ten thousand small buffers, not ten
//! thousand stacks. Reactor 0 owns the listener and deals new
//! connections round-robin to its peers through waker-poked inboxes;
//! each connection then lives on one reactor as a line-buffer state
//! machine. Per-session determinism is untouched by connection
//! interleaving because every session owns its RNG streams.
//!
//! The loop also implements group commit: all requests decoded from one
//! readiness batch are handled first (each journalling its effect), then
//! a single [`Service::flush_wal`] makes the whole batch durable, and
//! only then are the queued responses flushed to sockets — one fsync
//! per batch instead of one per request, with no reply ever racing
//! ahead of its journal record.
//!
//! The reader is hardened against misbehaving peers exactly like the
//! blocking loop: lines accumulate through a bounded buffer (an
//! oversized line is drained and answered with a protocol error instead
//! of ballooning daemon memory), invalid UTF-8 gets an error response
//! rather than a disconnect, and the optional read deadline is enforced
//! by the reactors' timer sweep off the service [`Clock`] — not
//! `SO_RCVTIMEO` — closing connections that go silent mid-session. One
//! connection's garbage never disturbs another's session state.

use crate::fault::{FaultAction, FaultPoint};
use crate::protocol::{Request, Response};
use crate::service::Service;
use polling::{Event, Interest, Poller, Waker};
use std::collections::BTreeMap;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

/// One bounded read off the wire.
enum LineRead {
    /// A complete line within the cap (without its newline).
    Line(Vec<u8>),
    /// The line exceeded the cap; the excess was drained to its newline.
    Oversized,
    /// Clean end of stream.
    Eof,
}

/// Reads one `\n`-terminated line, never buffering more than `max` bytes.
/// An over-long line is discarded up to (and including) its newline so the
/// connection can keep serving subsequent requests.
fn read_line_bounded(input: &mut impl BufRead, max: usize) -> io::Result<LineRead> {
    let mut line: Vec<u8> = Vec::new();
    loop {
        let chunk = input.fill_buf()?;
        if chunk.is_empty() {
            return if line.is_empty() {
                Ok(LineRead::Eof)
            } else {
                // An unterminated final line still counts (stdio pipes).
                Ok(LineRead::Line(line))
            };
        }
        if let Some(pos) = chunk.iter().position(|&b| b == b'\n') {
            if line.len() + pos > max {
                input.consume(pos + 1);
                return Ok(LineRead::Oversized);
            }
            line.extend_from_slice(&chunk[..pos]);
            input.consume(pos + 1);
            return Ok(LineRead::Line(line));
        }
        let take = chunk.len();
        if line.len() + take > max {
            // Over the cap with no newline in sight: drop what we hold and
            // drain the rest of the line without accumulating it.
            line.clear();
            line.shrink_to_fit();
            input.consume(take);
            loop {
                let chunk = input.fill_buf()?;
                if chunk.is_empty() {
                    return Ok(LineRead::Oversized);
                }
                match chunk.iter().position(|&b| b == b'\n') {
                    Some(pos) => {
                        input.consume(pos + 1);
                        return Ok(LineRead::Oversized);
                    }
                    None => {
                        let len = chunk.len();
                        input.consume(len);
                    }
                }
            }
        }
        line.extend_from_slice(chunk);
        input.consume(take);
    }
}

/// Whether a read error means "the peer went quiet past the deadline".
fn is_deadline(err: &io::Error) -> bool {
    matches!(
        err.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Serves one already-connected byte stream (the shared line loop).
fn serve_lines(
    service: &Service,
    mut input: impl BufRead,
    mut output: impl Write,
) -> io::Result<()> {
    let max = service.max_line_bytes();
    loop {
        let read = match read_line_bounded(&mut input, max) {
            Ok(read) => read,
            // A deadline expiry is a normal close, not a transport error.
            Err(err) if is_deadline(&err) => return Ok(()),
            Err(err) => return Err(err),
        };
        // Injected connection fault: drop the link as though the network
        // did, leaving whatever the service already applied in place —
        // the at-least-once story the client retry layer is tested under.
        if let Some(FaultAction::Drop) = service.fault_plan().check(FaultPoint::ConnectionRead) {
            return Ok(());
        }
        let reply = match read {
            LineRead::Eof => return Ok(()),
            LineRead::Oversized => crate::protocol::encode(&Response::Error {
                message: format!("protocol line exceeds the {max}-byte limit"),
            }),
            LineRead::Line(bytes) => match String::from_utf8(bytes) {
                Err(_) => crate::protocol::encode(&Response::Error {
                    message: "protocol line is not valid UTF-8".to_string(),
                }),
                Ok(line) if line.trim().is_empty() => continue,
                Ok(line) => service.handle_line(&line),
            },
        };
        output.write_all(reply.as_bytes())?;
        output.write_all(b"\n")?;
        output.flush()?;
        if service.shutdown_requested() {
            return Ok(());
        }
    }
}

/// Serves the daemon over stdin/stdout (or any reader/writer pair) until
/// EOF or `Shutdown`.
pub fn serve_stdio(service: &Service, input: impl BufRead, output: impl Write) -> io::Result<()> {
    serve_lines(service, input, output)
}

/// Poller token of the listening socket (reactor 0 only).
const TOKEN_LISTENER: usize = 0;
/// Poller token of each reactor's waker pipe.
const TOKEN_WAKER: usize = 1;
/// First token handed to an accepted connection.
const FIRST_CONN_TOKEN: usize = 2;
/// Ceiling on reactor threads: connection I/O is cheap, so a handful of
/// loops saturates the network path even on wide machines.
const MAX_REACTORS: usize = 8;
/// Poll timeout when no read deadline bounds the wait. Wakers make an
/// unbounded wait safe; the cap is a belt against a lost wake ever
/// parking a reactor forever.
const IDLE_POLL_MS: u64 = 1000;

/// Locks a mutex, riding through poisoning — a panicking reactor must
/// not wedge its peers' connection hand-off.
fn lock<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(|poison| poison.into_inner())
}

/// One connection's state on its reactor: the line-buffer state machine
/// the blocking loop kept on its stack, made explicit.
struct Conn {
    stream: TcpStream,
    /// Bytes of the current (incomplete) line.
    rbuf: Vec<u8>,
    /// Responses queued for the socket; flushed after the batch commits.
    wbuf: Vec<u8>,
    /// How much of `wbuf` has already reached the socket.
    wpos: usize,
    /// In oversized-line drain mode: discard until the next newline,
    /// then answer with a protocol error.
    draining: bool,
    /// Service-clock stamp of the last byte read (read-deadline sweep).
    last_activity: u64,
    /// Whether the poller registration currently asks for writability.
    want_write: bool,
    /// Close once `wbuf` is drained (EOF seen, or an injected drop).
    closing: bool,
}

impl Conn {
    fn pending(&self) -> bool {
        self.wpos < self.wbuf.len()
    }
}

/// What a readiness-driven read pass decided about the connection.
enum ReadOutcome {
    /// Keep serving.
    Open,
    /// Tear the connection down without delivering queued replies — the
    /// injected network drop, or a transport error.
    CloseNow,
    /// Flush queued replies, then close (peer EOF).
    CloseAfterFlush,
}

fn queue_reply(conn: &mut Conn, reply: &str) {
    conn.wbuf.extend_from_slice(reply.as_bytes());
    conn.wbuf.push(b'\n');
}

/// Handles one complete line, queueing the reply. Returns how many
/// requests were handled (0 for the skipped empty line).
fn respond(service: &Service, conn: &mut Conn, bytes: Vec<u8>) -> usize {
    let reply = match String::from_utf8(bytes) {
        Err(_) => crate::protocol::encode(&Response::Error {
            message: "protocol line is not valid UTF-8".to_string(),
        }),
        Ok(line) if line.trim().is_empty() => return 0,
        Ok(line) => service.handle_line(&line),
    };
    queue_reply(conn, &reply);
    1
}

fn oversized_reply(max: usize) -> String {
    crate::protocol::encode(&Response::Error {
        message: format!("protocol line exceeds the {max}-byte limit"),
    })
}

/// Feeds freshly-read bytes through the line state machine — the
/// event-loop twin of [`read_line_bounded`] + the dispatch in
/// [`serve_lines`], with identical cap, drain, fault and empty-line
/// semantics. Returns `Some` when the connection must close.
fn ingest(
    service: &Service,
    conn: &mut Conn,
    mut rest: &[u8],
    handled: &mut usize,
) -> Option<ReadOutcome> {
    let max = service.max_line_bytes();
    while let Some(pos) = rest.iter().position(|&b| b == b'\n') {
        let (head, tail) = rest.split_at(pos);
        rest = &tail[1..];
        let oversized = if conn.draining {
            conn.draining = false;
            true
        } else if conn.rbuf.len() + head.len() > max {
            conn.rbuf.clear();
            true
        } else {
            conn.rbuf.extend_from_slice(head);
            false
        };
        // Injected connection fault, checked once per line event exactly
        // like the blocking reader: drop the link as though the network
        // did, leaving whatever the service already applied in place —
        // the at-least-once story the client retry layer is tested under.
        if let Some(FaultAction::Drop) = service.fault_plan().check(FaultPoint::ConnectionRead) {
            return Some(ReadOutcome::CloseNow);
        }
        if oversized {
            queue_reply(conn, &oversized_reply(max));
            *handled += 1;
        } else {
            let line = std::mem::take(&mut conn.rbuf);
            *handled += respond(service, conn, line);
        }
    }
    // No newline in the remainder: accumulate within the cap, or switch
    // to drain mode and stop buffering the flood.
    if conn.draining {
        // Still draining: discard.
    } else if conn.rbuf.len() + rest.len() > max {
        conn.rbuf.clear();
        conn.rbuf.shrink_to_fit();
        conn.draining = true;
    } else {
        conn.rbuf.extend_from_slice(rest);
    }
    None
}

/// Reads a readable connection until `WouldBlock`, EOF or error,
/// pushing bytes through [`ingest`].
fn pump_reads(service: &Service, conn: &mut Conn, handled: &mut usize) -> ReadOutcome {
    let mut buf = [0u8; 8192];
    loop {
        match conn.stream.read(&mut buf) {
            Ok(0) => {
                // The EOF read gets a fault check too, matching the
                // blocking reader's per-read check.
                if let Some(FaultAction::Drop) =
                    service.fault_plan().check(FaultPoint::ConnectionRead)
                {
                    return ReadOutcome::CloseNow;
                }
                if conn.draining {
                    // EOF cut the drain short; the oversized line still
                    // gets its error, as the blocking reader answered it.
                    conn.draining = false;
                    queue_reply(conn, &oversized_reply(service.max_line_bytes()));
                    *handled += 1;
                } else if !conn.rbuf.is_empty() {
                    // An unterminated final line still counts.
                    let line = std::mem::take(&mut conn.rbuf);
                    *handled += respond(service, conn, line);
                }
                return ReadOutcome::CloseAfterFlush;
            }
            Ok(n) => {
                if let Some(outcome) = ingest(service, conn, &buf[..n], handled) {
                    return outcome;
                }
            }
            Err(err) if err.kind() == io::ErrorKind::WouldBlock => return ReadOutcome::Open,
            Err(err) if err.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return ReadOutcome::CloseNow,
        }
    }
}

/// Writes as much queued output as the socket will take.
/// `Ok(true)` means fully drained.
fn flush_conn(conn: &mut Conn) -> io::Result<bool> {
    while conn.pending() {
        match conn.stream.write(&conn.wbuf[conn.wpos..]) {
            Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
            Ok(n) => conn.wpos += n,
            Err(err) if err.kind() == io::ErrorKind::WouldBlock => return Ok(false),
            Err(err) if err.kind() == io::ErrorKind::Interrupted => continue,
            Err(err) => return Err(err),
        }
    }
    conn.wbuf.clear();
    conn.wpos = 0;
    Ok(true)
}

/// One event-loop thread. Reactor 0 additionally owns the listener and
/// distributes accepted connections round-robin across all reactors.
struct Reactor {
    index: usize,
    service: Arc<Service>,
    poller: Poller,
    listener: Option<TcpListener>,
    conns: BTreeMap<usize, Conn>,
    next_token: usize,
    /// Streams dealt to this reactor by reactor 0, pending adoption.
    inbox: Arc<Mutex<Vec<TcpStream>>>,
    /// Every reactor's inbox, indexed like `wakers` (used by reactor 0).
    inboxes: Arc<Vec<Arc<Mutex<Vec<TcpStream>>>>>,
    /// Every reactor's waker, `wakers[index]` being this reactor's own.
    wakers: Arc<Vec<Waker>>,
    accepted: Arc<AtomicUsize>,
    /// Round-robin deal cursor (reactor 0 only).
    deal: usize,
}

impl Reactor {
    /// Registers a fresh connection on this reactor's poller.
    fn adopt(&mut self, stream: TcpStream, now: u64) {
        let token = self.next_token;
        // Registration makes the socket non-blocking as a side effect —
        // the only sanctioned path to O_NONBLOCK outside vendor/polling.
        if self
            .poller
            .register(&stream, token, Interest::READABLE)
            .is_err()
        {
            let _ = stream.shutdown(Shutdown::Both);
            return;
        }
        self.next_token += 1;
        self.conns.insert(
            token,
            Conn {
                stream,
                rbuf: Vec::new(),
                wbuf: Vec::new(),
                wpos: 0,
                draining: false,
                last_activity: now,
                want_write: false,
                closing: false,
            },
        );
    }

    fn drain_inbox(&mut self, now: u64) {
        let streams: Vec<TcpStream> = std::mem::take(&mut *lock(&self.inbox));
        for stream in streams {
            self.adopt(stream, now);
        }
    }

    /// Accepts every pending connection (reactor 0), dealing them
    /// round-robin: ours are adopted directly, peers get an inbox push
    /// and a wake.
    fn accept_all(&mut self, now: u64) {
        loop {
            let Some(listener) = self.listener.as_ref() else {
                return;
            };
            match listener.accept() {
                Ok((stream, _)) => {
                    self.accepted.fetch_add(1, Ordering::Relaxed);
                    let target = self.deal % self.inboxes.len();
                    self.deal = self.deal.wrapping_add(1);
                    if target == self.index {
                        self.adopt(stream, now);
                    } else {
                        lock(&self.inboxes[target]).push(stream);
                        self.wakers[target].wake();
                    }
                }
                Err(err) if err.kind() == io::ErrorKind::WouldBlock => return,
                Err(err) if err.kind() == io::ErrorKind::Interrupted => continue,
                Err(err) => {
                    // Transient failure (ECONNABORTED, fd pressure, …):
                    // log and back off briefly so a persistent error
                    // cannot spin the loop hot, then let the next
                    // readiness round retry.
                    eprintln!("crowdfusion-serve: accept failed (retrying): {err}");
                    thread::sleep(Duration::from_millis(50));
                    return;
                }
            }
        }
    }

    /// Closes a connection: deregister, then shut the socket down so the
    /// peer sees EOF immediately (clones elsewhere cannot hold it open).
    fn close_conn(&mut self, token: usize) {
        if let Some(conn) = self.conns.remove(&token) {
            let _ = self.poller.deregister(&conn.stream);
            let _ = conn.stream.shutdown(Shutdown::Both);
        }
    }

    /// How long the next wait may park: bounded by the nearest read
    /// deadline when one is configured.
    fn wait_timeout(&self, now: u64) -> Duration {
        let mut ms = IDLE_POLL_MS;
        if let Some(limit) = self.service.read_deadline_ms() {
            for conn in self.conns.values() {
                let age = now.saturating_sub(conn.last_activity);
                ms = ms.min(limit.saturating_sub(age).max(1));
            }
        }
        Duration::from_millis(ms)
    }

    /// Flush pass: pushes queued replies out, retires fully-drained
    /// closing connections, and keeps poller interest in sync with
    /// whether output is still pending.
    fn flush_pass(&mut self) {
        let mut closes: Vec<usize> = Vec::new();
        for (&token, conn) in self.conns.iter_mut() {
            if conn.pending() {
                match flush_conn(conn) {
                    Ok(_) => {}
                    Err(_) => {
                        closes.push(token);
                        continue;
                    }
                }
            }
            if conn.closing && !conn.pending() {
                closes.push(token);
                continue;
            }
            let want = conn.pending();
            if want != conn.want_write {
                let interest = if want {
                    Interest::BOTH
                } else {
                    Interest::READABLE
                };
                if self
                    .poller
                    .reregister(&conn.stream, token, interest)
                    .is_ok()
                {
                    conn.want_write = want;
                } else {
                    closes.push(token);
                }
            }
        }
        for token in closes {
            self.close_conn(token);
        }
    }

    /// Closes every connection that has outlived the read deadline. Its
    /// sessions stay — TTL eviction owns their lifetime, not the socket.
    fn sweep_deadlines(&mut self) {
        let Some(limit) = self.service.read_deadline_ms() else {
            return;
        };
        let now = self.service.clock().now_ms();
        let expired: Vec<usize> = self
            .conns
            .iter()
            .filter(|(_, conn)| now.saturating_sub(conn.last_activity) > limit)
            .map(|(&token, _)| token)
            .collect();
        for token in expired {
            self.close_conn(token);
        }
    }

    fn run(mut self) {
        let mut events: Vec<Event> = Vec::new();
        let mut round: Vec<Event> = Vec::new();
        loop {
            let now = self.service.clock().now_ms();
            let timeout = Some(self.wait_timeout(now));
            if let Err(err) = self.poller.wait(&mut events, timeout) {
                if err.kind() == io::ErrorKind::Interrupted {
                    continue;
                }
                eprintln!(
                    "crowdfusion-serve: reactor {} poll failed: {err}",
                    self.index
                );
                break;
            }
            round.clear();
            round.extend(events.iter().copied());
            let now = self.service.clock().now_ms();
            let mut handled = 0usize;
            for event in &round {
                match event.token {
                    TOKEN_LISTENER => self.accept_all(now),
                    TOKEN_WAKER => {
                        self.wakers[self.index].clear();
                        self.drain_inbox(now);
                    }
                    token => {
                        if !event.readable {
                            continue; // writable-only: the flush pass covers it
                        }
                        let service = Arc::clone(&self.service);
                        let Some(conn) = self.conns.get_mut(&token) else {
                            continue; // closed earlier this round
                        };
                        conn.last_activity = now;
                        match pump_reads(&service, conn, &mut handled) {
                            ReadOutcome::Open => {}
                            ReadOutcome::CloseNow => self.close_conn(token),
                            ReadOutcome::CloseAfterFlush => {
                                if let Some(conn) = self.conns.get_mut(&token) {
                                    conn.closing = true;
                                }
                            }
                        }
                    }
                }
            }
            // Group commit: one sync covers every effect this batch
            // journalled, before any of its replies reaches a socket.
            if handled > 0 {
                if let Err(err) = self.service.flush_wal() {
                    eprintln!("crowdfusion-serve: journal flush failed: {err}");
                }
            }
            self.flush_pass();
            self.sweep_deadlines();
            if self.service.shutdown_requested() {
                // Wake the other reactors so they observe the flag.
                for waker in self.wakers.iter() {
                    waker.wake();
                }
                break;
            }
        }
        // Final drain: push out whatever queued (the `Bye`, typically),
        // then close everything so idle clients see EOF immediately.
        let tokens: Vec<usize> = self.conns.keys().copied().collect();
        for token in tokens {
            if let Some(conn) = self.conns.get_mut(&token) {
                let _ = flush_conn(conn);
            }
            self.close_conn(token);
        }
    }
}

/// Serves the daemon over TCP until a `Shutdown` request arrives.
/// Returns the number of connections accepted.
///
/// The daemon is long-lived, so the serving layer must neither leak nor
/// die: connections live as small buffered state machines on a fixed
/// pool of reactor event loops (resource use is bounded by *concurrent*
/// connections and reactor count, not lifetime totals), and a transient
/// `accept` failure (`ECONNABORTED`, fd pressure, …) is logged and
/// retried instead of tearing down every in-memory session. On shutdown
/// every still-open connection is flushed and closed, so idle clients
/// cannot keep the daemon alive.
pub fn serve_tcp(service: Arc<Service>, listener: TcpListener) -> io::Result<usize> {
    let reactor_count = service.threads().clamp(1, MAX_REACTORS);
    let accepted = Arc::new(AtomicUsize::new(0));
    let mut pollers = Vec::with_capacity(reactor_count);
    let mut wakers = Vec::with_capacity(reactor_count);
    let mut inboxes = Vec::with_capacity(reactor_count);
    for _ in 0..reactor_count {
        let mut poller = Poller::new()?;
        wakers.push(Waker::new(&mut poller, TOKEN_WAKER)?);
        pollers.push(poller);
        inboxes.push(Arc::new(Mutex::new(Vec::new())));
    }
    pollers[0].register(&listener, TOKEN_LISTENER, Interest::READABLE)?;
    let wakers = Arc::new(wakers);
    let inboxes = Arc::new(inboxes);
    let mut listener = Some(listener);
    let mut handles = Vec::with_capacity(reactor_count);
    for (index, poller) in pollers.into_iter().enumerate() {
        let reactor = Reactor {
            index,
            service: Arc::clone(&service),
            poller,
            listener: if index == 0 { listener.take() } else { None },
            conns: BTreeMap::new(),
            next_token: FIRST_CONN_TOKEN,
            inbox: Arc::clone(&inboxes[index]),
            inboxes: Arc::clone(&inboxes),
            wakers: Arc::clone(&wakers),
            accepted: Arc::clone(&accepted),
            deal: 0,
        };
        // analyze: allow(adhoc-thread) — reactor threads are connection
        // plumbing, not computation: refinement work inside a session
        // still runs on the session's pool, so traces stay
        // schedule-independent.
        handles.push(thread::spawn(move || reactor.run()));
    }
    for handle in handles {
        let _ = handle.join();
    }
    Ok(accepted.load(Ordering::Relaxed))
}

/// Retry tuning for [`Client::roundtrip_retrying`]: deterministic capped
/// exponential backoff — delay before attempt `n` (0-based) is
/// `min(base_ms << n, cap_ms)`. No jitter: the daemon serialises writes
/// behind one lock, so retry storms do not compound, and determinism is
/// worth more to the test matrix than desynchronisation.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Total attempts (the first try included). Minimum 1.
    pub attempts: u32,
    /// Backoff base in milliseconds.
    pub base_ms: u64,
    /// Backoff ceiling in milliseconds.
    pub cap_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            attempts: 4,
            base_ms: 10,
            cap_ms: 500,
        }
    }
}

impl RetryPolicy {
    /// The delay before attempt `attempt` (0-based; attempt 0 never
    /// waits).
    pub fn delay_ms(&self, attempt: u32) -> u64 {
        if attempt == 0 {
            return 0;
        }
        // 128-bit intermediate: `u64 << n` silently wraps for large n
        // (checked_shl only rejects the shift count, not value overflow).
        let raw = (self.base_ms as u128) << (attempt - 1).min(64);
        raw.min(self.cap_ms as u128) as u64
    }
}

/// Whether a transport error is worth a reconnect-and-retry: the kinds a
/// dropped connection or expired deadline produce. Anything else (say,
/// a malformed response) is a real bug and surfaces immediately.
fn is_retryable(err: &io::Error) -> bool {
    matches!(
        err.kind(),
        io::ErrorKind::UnexpectedEof
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::BrokenPipe
            | io::ErrorKind::WouldBlock
            | io::ErrorKind::TimedOut
    )
}

/// A line-oriented TCP client for the daemon — what `loadgen`, the CI
/// smoke test and ad-hoc drivers use.
pub struct Client {
    addr: SocketAddr,
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    /// Connects to a daemon.
    pub fn connect(addr: SocketAddr) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            addr,
            reader,
            writer: BufWriter::new(stream),
        })
    }

    /// Drops the current connection and dials the daemon again.
    pub fn reconnect(&mut self) -> io::Result<()> {
        *self = Client::connect(self.addr)?;
        Ok(())
    }

    /// Sends one request line and reads one response line.
    pub fn roundtrip(&mut self, request: &Request) -> io::Result<Response> {
        let line = crate::protocol::encode(request);
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut reply = String::new();
        if self.reader.read_line(&mut reply)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "daemon closed the connection",
            ));
        }
        crate::protocol::decode(reply.trim_end())
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    /// Negotiates the wire version up front. Returns the daemon's
    /// supported `(min, max)` range on success; an
    /// `UnsupportedVersion` refusal surfaces as `InvalidData`.
    pub fn hello(&mut self) -> io::Result<(u64, u64)> {
        match self.roundtrip(&Request::Hello {
            v: crate::protocol::WIRE_VERSION_MAX,
        })? {
            Response::Welcome { min, max, .. } => Ok((min, max)),
            Response::UnsupportedVersion { min, max, .. } => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("daemon speaks wire versions {min}..={max}"),
            )),
            other => Err(unexpected(&other)),
        }
    }

    /// Opens sessions for `specs`, returning typed ids. The options
    /// carry the idempotency token and per-session overrides.
    pub fn open_all(
        &mut self,
        specs: Vec<crowdfusion_core::session::EntitySpec>,
        options: OpenOptions,
    ) -> io::Result<Vec<crowdfusion_core::session::OpenedSession>> {
        match self.roundtrip(&Request::Open {
            request: options.request,
            entities: specs,
            k: options.k,
            budget: options.budget,
            pc: options.pc,
        })? {
            Response::Opened { sessions } => Ok(sessions),
            Response::Error { message } => Err(protocol_error(message)),
            other => Err(unexpected(&other)),
        }
    }

    /// Opens one session and returns its typed handle — the entry into
    /// the `client.open(..)?.select()?` chain.
    pub fn open(
        &mut self,
        spec: crowdfusion_core::session::EntitySpec,
        options: OpenOptions,
    ) -> io::Result<Session<'_>> {
        let opened = self.open_all(vec![spec], options)?;
        let id = opened
            .first()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "daemon opened no session"))?
            .session;
        Ok(Session { client: self, id })
    }

    /// A typed handle onto an already-open session id (e.g. one of an
    /// [`Client::open_all`] batch, or a session another client opened).
    pub fn session(&mut self, id: u64) -> Session<'_> {
        Session { client: self, id }
    }

    /// [`Client::roundtrip`] under at-least-once delivery: on a dropped
    /// connection or expired deadline, reconnects and resends after the
    /// policy's capped backoff. Only safe for requests that are
    /// idempotent on redelivery — reads, `Select` on an open round,
    /// `Absorb` (session-level dedup absorbs the repeat), and `Open`
    /// carrying an idempotency token. A caller retrying a token-less
    /// `Open` gets duplicate sessions, by design.
    pub fn roundtrip_retrying(
        &mut self,
        request: &Request,
        policy: RetryPolicy,
    ) -> io::Result<Response> {
        let attempts = policy.attempts.max(1);
        let mut last = None;
        for attempt in 0..attempts {
            let delay = policy.delay_ms(attempt);
            if delay > 0 {
                thread::sleep(Duration::from_millis(delay));
            }
            if last.is_some() {
                // The old connection is dead; a failed redial counts as
                // this attempt's failure and backs off again.
                if let Err(err) = self.reconnect() {
                    last = Some(err);
                    continue;
                }
            }
            match self.roundtrip(request) {
                Ok(response) => return Ok(response),
                Err(err) if is_retryable(&err) && attempt + 1 < attempts => {
                    last = Some(err);
                }
                Err(err) => return Err(err),
            }
        }
        Err(last.expect("retry loop exits early unless every attempt failed"))
    }
}

/// A daemon error response surfaced through the typed client API.
fn protocol_error(message: String) -> io::Error {
    io::Error::other(message)
}

/// A response of the wrong shape — a daemon bug or a framing mix-up,
/// never retried.
fn unexpected(response: &Response) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("unexpected response {response:?}"),
    )
}

/// Per-open options for the typed client API: the idempotency token and
/// the per-session overrides the wire `Open` carries.
#[derive(Debug, Clone, Copy, Default)]
pub struct OpenOptions {
    /// Idempotency token for at-least-once delivery.
    pub request: Option<u64>,
    /// Tasks-per-round override.
    pub k: Option<usize>,
    /// Budget override.
    pub budget: Option<usize>,
    /// Crowd-accuracy override.
    pub pc: Option<f64>,
}

impl OpenOptions {
    /// Sets the idempotency token.
    pub fn request(mut self, token: u64) -> Self {
        self.request = Some(token);
        self
    }
}

/// What a typed `select` produced.
#[derive(Debug, Clone, PartialEq)]
pub enum Selected {
    /// An open round: answer these tasks via [`Session::absorb`].
    Round {
        /// 1-based round number the round will close as.
        round: usize,
        /// Published tasks in selection order.
        tasks: Vec<crowdfusion_core::session::PublishedTask>,
    },
    /// The session stopped selecting for good.
    Exhausted {
        /// Rounds closed over the session's lifetime.
        rounds: usize,
        /// Judgments spent.
        spent: usize,
    },
}

/// One `absorb` call's ingestion report, typed.
#[derive(Debug, Clone, PartialEq)]
pub struct Absorbed {
    /// Answers applied.
    pub accepted: usize,
    /// Duplicates / late answers dropped.
    pub duplicates: usize,
    /// Open-round answers still outstanding.
    pub pending: usize,
    /// The closed round's record when this call completed the round.
    pub closed: Option<crowdfusion_core::round::RoundPoint>,
}

/// A typed handle on one daemon session: the session id plus the client
/// connection, so the open → select → absorb loop reads as method calls
/// instead of hand-built `Request` values.
pub struct Session<'c> {
    client: &'c mut Client,
    id: u64,
}

impl Session<'_> {
    /// The daemon-assigned session id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Returns the open round (idempotent) or selects the next one.
    pub fn select(&mut self) -> io::Result<Selected> {
        match self
            .client
            .roundtrip(&Request::Select { session: self.id })?
        {
            Response::Round { round, tasks, .. } => Ok(Selected::Round { round, tasks }),
            Response::Exhausted { rounds, spent, .. } => Ok(Selected::Exhausted { rounds, spent }),
            Response::Error { message } => Err(protocol_error(message)),
            other => Err(unexpected(&other)),
        }
    }

    /// Streams crowd answers into the open round.
    pub fn absorb(&mut self, answers: &[(u64, bool)]) -> io::Result<Absorbed> {
        let answers = answers
            .iter()
            .map(|&(task, value)| crate::protocol::WireAnswer { task, value })
            .collect();
        match self.client.roundtrip(&Request::Absorb {
            session: self.id,
            answers,
        })? {
            Response::Absorbed {
                accepted,
                duplicates,
                pending,
                closed,
                ..
            } => Ok(Absorbed {
                accepted,
                duplicates,
                pending,
                closed,
            }),
            Response::Error { message } => Err(protocol_error(message)),
            other => Err(unexpected(&other)),
        }
    }

    /// Per-session bookkeeping, raw (the full wire `Status` payload).
    pub fn status(&mut self) -> io::Result<Response> {
        match self
            .client
            .roundtrip(&Request::Status { session: self.id })?
        {
            status @ Response::Status { .. } => Ok(status),
            Response::Error { message } => Err(protocol_error(message)),
            other => Err(unexpected(&other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{Request, Response};
    use crate::service::{SelectorChoice, ServiceConfig};
    use crowdfusion_core::round::RoundConfig;

    fn service_one() -> Service {
        Service::new(ServiceConfig::new(
            1,
            RoundConfig::new(2, 4, 0.8).unwrap(),
            1,
            SelectorChoice::Random,
        ))
        .unwrap()
    }

    fn run_lines(service: &Service, input: &[u8]) -> Vec<String> {
        let mut output = Vec::new();
        serve_stdio(service, input, &mut output).unwrap();
        String::from_utf8(output)
            .unwrap()
            .lines()
            .map(str::to_string)
            .collect()
    }

    #[test]
    fn stdio_loop_answers_line_per_line_and_stops_on_shutdown() {
        let service = service_one();
        let input = format!(
            "{}\n\n{}\n{}\n{}\n",
            crate::protocol::encode(&Request::Metrics),
            crate::protocol::encode(&Request::Shutdown),
            // Never reached: the loop stops after Bye.
            crate::protocol::encode(&Request::Metrics),
            crate::protocol::encode(&Request::Metrics),
        );
        let lines = run_lines(&service, input.as_bytes());
        assert_eq!(lines.len(), 2, "metrics + bye, then stop: {lines:?}");
        assert_eq!(
            crate::protocol::decode::<Response>(&lines[1]).unwrap(),
            Response::Bye
        );
    }

    #[test]
    fn oversized_lines_get_an_error_and_the_connection_survives() {
        let mut config = ServiceConfig::new(
            1,
            RoundConfig::new(2, 4, 0.8).unwrap(),
            1,
            SelectorChoice::Random,
        );
        config.max_line_bytes = 64;
        let service = Service::new(config).unwrap();
        // A line far past the cap (and past any single fill_buf chunk),
        // followed by a legitimate request on the SAME stream.
        let mut input = vec![b'x'; 1 << 16];
        input.push(b'\n');
        input.extend_from_slice(crate::protocol::encode(&Request::Metrics).as_bytes());
        input.push(b'\n');
        let lines = run_lines(&service, &input);
        assert_eq!(lines.len(), 2);
        let Response::Error { message } = crate::protocol::decode::<Response>(&lines[0]).unwrap()
        else {
            panic!("oversized line must answer with an error: {lines:?}");
        };
        assert!(message.contains("64-byte"), "got {message:?}");
        assert!(matches!(
            crate::protocol::decode::<Response>(&lines[1]).unwrap(),
            Response::Metrics { .. }
        ));
    }

    #[test]
    fn oversized_line_exactly_at_the_cap_boundary_is_kept() {
        let mut config = ServiceConfig::new(
            1,
            RoundConfig::new(2, 4, 0.8).unwrap(),
            1,
            SelectorChoice::Random,
        );
        let probe = crate::protocol::encode(&Request::Metrics);
        config.max_line_bytes = probe.len();
        let service = Service::new(config).unwrap();
        // Exactly at the cap: allowed. One byte over: rejected.
        let input = format!("{probe}\n {probe}\n");
        let lines = run_lines(&service, input.as_bytes());
        assert_eq!(lines.len(), 2);
        assert!(matches!(
            crate::protocol::decode::<Response>(&lines[0]).unwrap(),
            Response::Metrics { .. }
        ));
        assert!(matches!(
            crate::protocol::decode::<Response>(&lines[1]).unwrap(),
            Response::Error { .. }
        ));
    }

    #[test]
    fn invalid_utf8_gets_an_error_not_a_disconnect() {
        let service = service_one();
        let mut input = vec![0xff, 0xfe, b'{', 0x80];
        input.push(b'\n');
        input.extend_from_slice(crate::protocol::encode(&Request::Metrics).as_bytes());
        input.push(b'\n');
        let lines = run_lines(&service, &input);
        assert_eq!(lines.len(), 2);
        let Response::Error { message } = crate::protocol::decode::<Response>(&lines[0]).unwrap()
        else {
            panic!("binary junk must answer with an error");
        };
        assert!(message.contains("UTF-8"));
        assert!(matches!(
            crate::protocol::decode::<Response>(&lines[1]).unwrap(),
            Response::Metrics { .. }
        ));
    }

    #[test]
    fn unterminated_final_line_still_answers() {
        let service = service_one();
        let lines = run_lines(
            &service,
            crate::protocol::encode(&Request::Metrics).as_bytes(),
        );
        assert_eq!(lines.len(), 1);
        assert!(matches!(
            crate::protocol::decode::<Response>(&lines[0]).unwrap(),
            Response::Metrics { .. }
        ));
    }

    #[test]
    fn retry_policy_backoff_is_capped_exponential() {
        let policy = RetryPolicy {
            attempts: 8,
            base_ms: 10,
            cap_ms: 70,
        };
        let delays: Vec<u64> = (0..6).map(|a| policy.delay_ms(a)).collect();
        assert_eq!(delays, vec![0, 10, 20, 40, 70, 70]);
        // Huge attempt numbers saturate instead of overflowing.
        assert_eq!(policy.delay_ms(200), 70);
    }

    #[test]
    fn retryable_kinds_are_the_connection_failures() {
        for kind in [
            io::ErrorKind::UnexpectedEof,
            io::ErrorKind::ConnectionReset,
            io::ErrorKind::ConnectionAborted,
            io::ErrorKind::BrokenPipe,
            io::ErrorKind::WouldBlock,
            io::ErrorKind::TimedOut,
        ] {
            assert!(is_retryable(&io::Error::new(kind, "x")), "{kind:?}");
        }
        for kind in [io::ErrorKind::InvalidData, io::ErrorKind::NotFound] {
            assert!(!is_retryable(&io::Error::new(kind, "x")), "{kind:?}");
        }
    }
}
