//! Snapshot persistence: the whole registry as one JSON document on disk.
//!
//! The snapshot carries everything [`RegistrySnapshot`] serialises —
//! posteriors, budget ledgers, selector RNG states, partially answered
//! open rounds and the master RNG state — so a restarted daemon continues
//! every session mid-round, and future `open`s continue the same seed
//! schedule. Writes go through a `.tmp` sibling plus rename, so a crash
//! mid-write never clobbers the previous good snapshot.

use crowdfusion_core::session::RegistrySnapshot;
use std::io;
use std::path::Path;

/// Writes a registry snapshot atomically (`path.tmp` then rename).
pub fn save(snapshot: &RegistrySnapshot, path: &Path) -> io::Result<()> {
    let text = serde_json::to_string(snapshot)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, text)?;
    std::fs::rename(&tmp, path)
}

/// Reads a registry snapshot.
pub fn load(path: &Path) -> io::Result<RegistrySnapshot> {
    let text = std::fs::read_to_string(path)?;
    serde_json::from_str(&text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdfusion_core::pool::Pool;
    use crowdfusion_core::round::RoundConfig;
    use crowdfusion_core::session::{EntitySpec, SessionRegistry};

    #[test]
    fn snapshot_file_roundtrips() {
        let config = RoundConfig::new(2, 6, 0.8).unwrap();
        let mut reg = SessionRegistry::new(1, config, Pool::serial());
        reg.open_batch(
            vec![EntitySpec::simple("b", vec![0.4, 0.6], vec![true, false])],
            None,
        )
        .unwrap();
        let dir = std::env::temp_dir().join("crowdfusion-service-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.json");
        let snap = reg.snapshot();
        save(&snap, &path).unwrap();
        let loaded = load(&path).unwrap();
        assert_eq!(loaded, snap);
        // The tmp sibling does not linger.
        assert!(!path.with_extension("tmp").exists());
        assert!(load(&dir.join("missing.json")).is_err());
        std::fs::remove_file(&path).ok();
    }
}
