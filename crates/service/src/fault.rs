//! Deterministic fault injection for the durability layer.
//!
//! A [`FaultPlan`] is a schedule: "the Nth time execution reaches fault
//! point P, do action A". The durability code calls [`FaultPlan::check`]
//! at each instrumented point; production services carry
//! [`FaultPlan::none`], which compiles down to an always-`None` branch.
//! Because the schedule keys on (point, occurrence-count) rather than
//! time or randomness, a chaos test replays the exact same failure at the
//! exact same operation every run — which is what lets the `chaos` suite
//! assert byte-identical recovery rather than "usually recovers".
//!
//! A *crash* here is simulated: the instrumented call returns a
//! [`SimulatedCrash`] error that unwinds out of the service. The chaos
//! harness treats it as process death — it drops the service value on the
//! floor (no destructors run the drain path; the journal file is simply
//! left wherever the OS-visible writes got to) and re-opens the
//! durability directory, exactly as a restarted daemon would.
//!
//! Occurrence counters live behind an [`Arc`], so cloning a plan into a
//! rebuilt service resumes counting where the crashed incarnation left
//! off — a plan that kills the first snapshot write does not also kill
//! the first snapshot write of every recovery.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Instrumented points in the durability and transport code, in the order
/// a single mutating request would reach them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultPoint {
    /// A journal record is about to be written (before any bytes land).
    JournalAppend,
    /// A journaled effect is about to be applied to in-memory state.
    EffectApply,
    /// The snapshot temp file is about to be written.
    SnapshotWrite,
    /// The snapshot temp file is about to be renamed over the live one.
    SnapshotRename,
    /// The journal is about to be truncated after a durable snapshot.
    JournalTruncate,
    /// A connection is about to hand a decoded line to the service.
    ConnectionRead,
}

impl FaultPoint {
    /// Stable name used in test matrices and failure messages.
    pub fn name(self) -> &'static str {
        match self {
            FaultPoint::JournalAppend => "journal-append",
            FaultPoint::EffectApply => "effect-apply",
            FaultPoint::SnapshotWrite => "snapshot-write",
            FaultPoint::SnapshotRename => "snapshot-rename",
            FaultPoint::JournalTruncate => "journal-truncate",
            FaultPoint::ConnectionRead => "connection-read",
        }
    }
}

impl fmt::Display for FaultPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// What happens when a scheduled fault fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Die here: the operation returns [`SimulatedCrash`] without doing
    /// its work (for write points, after writing whatever `Torn` left).
    Crash,
    /// Write only the first `keep_bytes` of the payload, then crash — a
    /// torn write, as when power fails mid-`write(2)`.
    Torn {
        /// Bytes of the payload that land before the crash.
        keep_bytes: usize,
    },
    /// Drop the operation silently (connection points: close the socket).
    Drop,
}

/// The trigger condition for one rule: fire when the point's occurrence
/// counter (1-based) equals `occurrence`.
#[derive(Debug, Clone, Copy)]
struct FaultRule {
    occurrence: u64,
    action: FaultAction,
}

/// The error a simulated crash surfaces as. Carries the point so chaos
/// assertions can verify the right fault actually fired.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimulatedCrash {
    /// Where the crash was injected.
    pub point: FaultPoint,
}

impl fmt::Display for SimulatedCrash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "simulated crash at fault point `{}`", self.point)
    }
}

impl std::error::Error for SimulatedCrash {}

impl From<SimulatedCrash> for std::io::Error {
    fn from(crash: SimulatedCrash) -> std::io::Error {
        std::io::Error::other(crash)
    }
}

/// True when `err` is an injected [`SimulatedCrash`] rather than a real
/// I/O failure — the chaos harness keys its "treat as process death"
/// behaviour off this.
pub fn is_simulated_crash(err: &std::io::Error) -> bool {
    as_simulated_crash(err).is_some()
}

/// Recovers the [`SimulatedCrash`] an `io::Error` wraps, if any.
pub fn as_simulated_crash(err: &std::io::Error) -> Option<SimulatedCrash> {
    err.get_ref()
        .and_then(|inner| inner.downcast_ref::<SimulatedCrash>())
        .cloned()
}

struct PlanState {
    rules: Mutex<BTreeMap<FaultPoint, Vec<FaultRule>>>,
    counters: Mutex<BTreeMap<FaultPoint, u64>>,
    fired: AtomicU64,
}

/// A shared, deterministic fault schedule. Cloning shares rules and
/// occurrence counters (see module docs for why that matters across
/// crash/recovery cycles).
#[derive(Clone)]
pub struct FaultPlan {
    state: Arc<PlanState>,
}

impl fmt::Debug for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FaultPlan")
            .field("fired", &self.fired())
            .finish()
    }
}

impl FaultPlan {
    /// The empty plan: every `check` returns `None`.
    pub fn none() -> FaultPlan {
        FaultPlan {
            state: Arc::new(PlanState {
                rules: Mutex::new(BTreeMap::new()),
                counters: Mutex::new(BTreeMap::new()),
                fired: AtomicU64::new(0),
            }),
        }
    }

    /// Builder: fire `action` the `occurrence`-th (1-based) time execution
    /// reaches `point`.
    pub fn on(self, point: FaultPoint, occurrence: u64, action: FaultAction) -> FaultPlan {
        assert!(occurrence >= 1, "occurrences are 1-based");
        self.state
            .rules
            .lock()
            .expect("fault plan poisoned")
            .entry(point)
            .or_default()
            .push(FaultRule { occurrence, action });
        self
    }

    /// Counts this arrival at `point` and returns the scheduled action, if
    /// any rule's occurrence matches.
    pub fn check(&self, point: FaultPoint) -> Option<FaultAction> {
        let count = {
            let mut counters = self.state.counters.lock().expect("fault plan poisoned");
            let slot = counters.entry(point).or_insert(0);
            *slot += 1;
            *slot
        };
        let rules = self.state.rules.lock().expect("fault plan poisoned");
        let hit = rules
            .get(&point)?
            .iter()
            .find(|r| r.occurrence == count)
            .map(|r| r.action);
        if hit.is_some() {
            self.state.fired.fetch_add(1, Ordering::SeqCst);
        }
        hit
    }

    /// Convenience for crash-only points: returns `Err(SimulatedCrash)` if
    /// a `Crash` is scheduled here. `Torn`/`Drop` at a crash-only point is
    /// a plan bug and panics loudly rather than being silently ignored.
    pub fn crash_if_scheduled(&self, point: FaultPoint) -> Result<(), SimulatedCrash> {
        match self.check(point) {
            None => Ok(()),
            Some(FaultAction::Crash) => Err(SimulatedCrash { point }),
            Some(other) => panic!("fault point `{point}` cannot honour {other:?}"),
        }
    }

    /// How many scheduled faults have fired so far. Chaos tests assert
    /// this matches the plan, so a fault that never triggered (wrong
    /// occurrence count, dead code path) fails the test instead of
    /// silently weakening it.
    pub fn fired(&self) -> u64 {
        self.state.fired.load(Ordering::SeqCst)
    }

    /// How many times execution has reached `point` (fired or not).
    pub fn arrivals(&self, point: FaultPoint) -> u64 {
        *self
            .state
            .counters
            .lock()
            .expect("fault plan poisoned")
            .get(&point)
            .unwrap_or(&0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_never_fires() {
        let plan = FaultPlan::none();
        for _ in 0..10 {
            assert_eq!(plan.check(FaultPoint::JournalAppend), None);
        }
        assert_eq!(plan.fired(), 0);
        assert_eq!(plan.arrivals(FaultPoint::JournalAppend), 10);
    }

    #[test]
    fn rule_fires_on_exact_occurrence_only() {
        let plan = FaultPlan::none().on(FaultPoint::SnapshotWrite, 3, FaultAction::Crash);
        assert_eq!(plan.check(FaultPoint::SnapshotWrite), None);
        assert_eq!(plan.check(FaultPoint::SnapshotWrite), None);
        assert_eq!(
            plan.check(FaultPoint::SnapshotWrite),
            Some(FaultAction::Crash)
        );
        assert_eq!(plan.check(FaultPoint::SnapshotWrite), None);
        assert_eq!(plan.fired(), 1);
    }

    #[test]
    fn clones_share_counters_across_recovery() {
        let plan = FaultPlan::none().on(FaultPoint::JournalAppend, 2, FaultAction::Crash);
        assert_eq!(plan.check(FaultPoint::JournalAppend), None);
        // "Recovered service" gets a clone; the next arrival is the 2nd.
        let recovered = plan.clone();
        assert_eq!(
            recovered.check(FaultPoint::JournalAppend),
            Some(FaultAction::Crash)
        );
        assert_eq!(plan.fired(), 1);
    }

    #[test]
    fn points_count_independently() {
        let plan = FaultPlan::none().on(FaultPoint::EffectApply, 1, FaultAction::Crash);
        assert_eq!(plan.check(FaultPoint::JournalAppend), None);
        assert_eq!(
            plan.check(FaultPoint::EffectApply),
            Some(FaultAction::Crash)
        );
    }

    #[test]
    fn crash_if_scheduled_surfaces_the_point() {
        let plan = FaultPlan::none().on(FaultPoint::EffectApply, 1, FaultAction::Crash);
        let err = plan
            .crash_if_scheduled(FaultPoint::EffectApply)
            .unwrap_err();
        assert_eq!(err.point, FaultPoint::EffectApply);
        assert!(err.to_string().contains("effect-apply"));
    }

    #[test]
    fn simulated_crash_survives_io_error_wrapping() {
        let err: std::io::Error = SimulatedCrash {
            point: FaultPoint::JournalAppend,
        }
        .into();
        assert!(is_simulated_crash(&err));
        let real = std::io::Error::new(std::io::ErrorKind::NotFound, "missing");
        assert!(!is_simulated_crash(&real));
    }

    #[test]
    #[should_panic(expected = "cannot honour")]
    fn torn_at_crash_only_point_is_a_plan_bug() {
        let plan = FaultPlan::none().on(
            FaultPoint::EffectApply,
            1,
            FaultAction::Torn { keep_bytes: 4 },
        );
        let _ = plan.crash_if_scheduled(FaultPoint::EffectApply);
    }
}
