//! Cross-session budget scheduling for the serving daemon.
//!
//! In the default **per-session** mode every session spends its own
//! budget and the daemon behaves exactly as it did before the scheduler
//! existed. In **global** mode the operator grants one shared pool of
//! crowd judgments, and rounds are admitted strictly in marginal-gain
//! order: each idle session's best next task gain (the entropy the
//! cheapest single judgment is expected to remove, see
//! [`crowdfusion_core::sched::entity_gain`]) is kept in a deterministic
//! [`GainQueue`], and the `Schedule` verb pops the best candidate, caps
//! its round by the budget remaining, and charges the opened round
//! against the shared [`BudgetLedger`].
//!
//! Everything here is *state*, not policy: the daemon's dispatcher owns
//! locking and journalling. [`SchedState`] rides the durability
//! substrate as a [`SchedSnapshot`] (ledger + admission marks) embedded
//! in the durable snapshot; the gain queue itself is **never
//! persisted** — it is a pure function of the registry and is rebuilt
//! wholesale after recovery or restore, which keeps snapshots small and
//! makes the queue impossible to desynchronise across shard counts.

use crowdfusion_core::sched::{BudgetLedger, GainQueue};
use crowdfusion_core::session::SessionState;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// How the daemon spends crowd budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BudgetMode {
    /// Each session spends its own budget (the historical behaviour;
    /// byte-identical traces, snapshots and WALs to daemons that predate
    /// the scheduler).
    #[default]
    PerSession,
    /// One shared judgment pool, spent across sessions in descending
    /// marginal-gain order via the `Schedule` verb.
    Global,
}

impl BudgetMode {
    /// Parses the CLI/JSON spelling.
    pub fn parse(name: &str) -> Result<BudgetMode, String> {
        match name {
            "per-session" => Ok(BudgetMode::PerSession),
            "global" => Ok(BudgetMode::Global),
            other => Err(format!(
                "unknown budget mode {other:?} (per-session or global)"
            )),
        }
    }

    /// The CLI/JSON spelling.
    pub fn name(self) -> &'static str {
        match self {
            BudgetMode::PerSession => "per-session",
            BudgetMode::Global => "global",
        }
    }

    /// Whether the global scheduler is active.
    pub fn is_global(self) -> bool {
        matches!(self, BudgetMode::Global)
    }
}

/// A recorded admission: the client's `Schedule` idempotency token and
/// the session the scheduler picked for it. Retried tokens re-read the
/// admitted session instead of admitting (and charging) twice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScheduledMark {
    /// The client's idempotency token.
    pub request: u64,
    /// The session the admission opened a round on.
    pub session: u64,
}

/// The scheduler state that rides the durable snapshot. The gain queue
/// is deliberately absent — see the module docs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SchedSnapshot {
    /// The shared ledger at snapshot time.
    pub ledger: BudgetLedger,
    /// Completed admissions by token, ascending.
    pub scheduled: Vec<ScheduledMark>,
}

/// Live scheduler state (global mode only).
#[derive(Debug, Clone, PartialEq)]
pub struct SchedState {
    /// The shared judgment pool.
    pub ledger: BudgetLedger,
    /// Idle sessions ranked by `(gain desc, session asc)`.
    pub queue: GainQueue,
    /// Admission idempotency marks: token → session.
    pub scheduled: BTreeMap<u64, u64>,
}

impl SchedState {
    /// A fresh scheduler with the whole budget unspent and nothing
    /// queued.
    pub fn new(budget: u64) -> SchedState {
        SchedState {
            ledger: BudgetLedger::new(budget),
            queue: GainQueue::new(),
            scheduled: BTreeMap::new(),
        }
    }

    /// Rebuilds ledger and marks from a durable snapshot. `budget` is
    /// the operator's *current* grant: an operator may raise (or lower)
    /// the pool across restarts, so the snapshot contributes only
    /// `spent`, clamped to the new grant. The queue starts empty — the
    /// caller rebuilds it from the recovered registry.
    pub fn from_snapshot(snapshot: &SchedSnapshot, budget: u64) -> SchedState {
        SchedState {
            ledger: BudgetLedger {
                budget,
                spent: snapshot.ledger.spent.min(budget),
            },
            queue: GainQueue::new(),
            scheduled: snapshot
                .scheduled
                .iter()
                .map(|mark| (mark.request, mark.session))
                .collect(),
        }
    }

    /// The durable form (marks in ascending token order).
    pub fn snapshot(&self) -> SchedSnapshot {
        SchedSnapshot {
            ledger: self.ledger,
            scheduled: self
                .scheduled
                .iter()
                .map(|(&request, &session)| ScheduledMark { request, session })
                .collect(),
        }
    }

    /// The session's current best task and gain, or `None` when the
    /// session is not schedulable: a round is already open, the session
    /// is exhausted, or its own budget has nothing left. Gains come from
    /// the session's *live posterior*, so the value shifts as rounds
    /// absorb — which is exactly the incremental recompute the scheduler
    /// wants.
    pub fn session_gain(state: &SessionState) -> Option<(usize, f64)> {
        if state.has_open_round() || state.is_exhausted() || state.remaining() == 0 {
            return None;
        }
        crowdfusion_core::sched::entity_gain(state.posterior(), state.pc_assumed())
            .ok()
            .flatten()
    }

    /// Applies a freshly computed gain: queue the session when
    /// schedulable, drop it when not.
    pub fn refresh(&mut self, session: u64, gain: Option<(usize, f64)>) {
        match gain {
            Some((fact, gain)) => self.queue.insert(session, fact, gain),
            None => {
                self.queue.remove(session);
            }
        }
    }

    /// Records a completed admission for idempotent retry.
    pub fn mark(&mut self, request: Option<u64>, session: u64) {
        if let Some(token) = request {
            self.scheduled.insert(token, session);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_mode_parses_the_cli_spellings() {
        assert_eq!(
            BudgetMode::parse("per-session").unwrap(),
            BudgetMode::PerSession
        );
        assert_eq!(BudgetMode::parse("global").unwrap(), BudgetMode::Global);
        assert!(BudgetMode::parse("shared").is_err());
        assert_eq!(BudgetMode::default(), BudgetMode::PerSession);
        assert!(!BudgetMode::PerSession.is_global());
        assert!(BudgetMode::Global.is_global());
        for mode in [BudgetMode::PerSession, BudgetMode::Global] {
            assert_eq!(BudgetMode::parse(mode.name()).unwrap(), mode);
        }
    }

    #[test]
    fn snapshot_round_trips_ledger_and_marks() {
        let mut sched = SchedState::new(40);
        sched.ledger.charge(13).unwrap();
        sched.mark(Some(7), 2);
        sched.mark(Some(3), 0);
        sched.mark(None, 5); // no token, nothing recorded
        sched.queue.insert(2, 0, 0.5); // queue must NOT persist

        let snap = sched.snapshot();
        assert_eq!(
            snap.scheduled,
            vec![
                ScheduledMark {
                    request: 3,
                    session: 0
                },
                ScheduledMark {
                    request: 7,
                    session: 2
                },
            ]
        );
        let json = serde_json::to_string(&snap).unwrap();
        let back: SchedSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);

        let revived = SchedState::from_snapshot(&back, 40);
        assert_eq!(revived.ledger, sched.ledger);
        assert_eq!(revived.scheduled, sched.scheduled);
        assert!(revived.queue.is_empty(), "queues are rebuilt, not restored");
    }

    #[test]
    fn from_snapshot_clamps_spent_to_a_shrunken_grant() {
        let mut sched = SchedState::new(100);
        sched.ledger.charge(60).unwrap();
        let snap = sched.snapshot();
        // Operator restarts with a smaller pool: spent clamps, remaining
        // is zero, nothing underflows.
        let shrunk = SchedState::from_snapshot(&snap, 50);
        assert_eq!(shrunk.ledger.spent, 50);
        assert_eq!(shrunk.ledger.remaining(), 0);
        assert!(shrunk.ledger.is_exhausted());
        // And with a raised pool the spend carries over unchanged.
        let grown = SchedState::from_snapshot(&snap, 200);
        assert_eq!(grown.ledger.spent, 60);
        assert_eq!(grown.ledger.remaining(), 140);
    }

    #[test]
    fn refresh_inserts_and_evicts_candidates() {
        let mut sched = SchedState::new(10);
        sched.refresh(4, Some((1, 0.25)));
        sched.refresh(9, Some((0, 0.75)));
        assert_eq!(sched.queue.peek().unwrap().session, 9);
        sched.refresh(9, None);
        assert_eq!(sched.queue.peek().unwrap().session, 4);
        sched.refresh(4, None);
        assert!(sched.queue.is_empty());
    }
}
