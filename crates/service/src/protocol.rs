//! The `crowdfusion-serve` wire protocol: line-delimited JSON over TCP or
//! stdio.
//!
//! Every request and every response is one JSON document on one line.
//! Verbs mirror the session lifecycle: `open` registers entities (priors
//! built on the pool), `select` returns the next task batch under the
//! session budget, `absorb` streams crowd answers in — partial batches,
//! out of order, duplicates rejected — `snapshot`/`restore` persist the
//! whole daemon, and `status`/`metrics`/`trace` read the bookkeeping out.
//!
//! Encoding follows the vendored serde stand-in's conventions: unit enum
//! variants are their name as a string (`"Metrics"`), struct variants are
//! a single-key object (`{"Select": {"session": 0}}`).

use crowdfusion_core::round::RoundPoint;
use crowdfusion_core::session::{EntitySpec, OpenedSession, PublishedTask, RegistryMetrics};
use crowdfusion_core::system::ExperimentTrace;
use serde::{Deserialize, Serialize};

/// One streamed crowd answer: the published task id and the judgment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WireAnswer {
    /// The task id from a `Round` response.
    pub task: u64,
    /// The crowd judgment.
    pub value: bool,
}

/// A client request (one JSON line).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Registers entities as new sessions; priors are built in parallel on
    /// the daemon's worker pool. `k`/`budget`/`pc` override the daemon's
    /// per-session defaults when present.
    Open {
        /// Idempotency token for at-least-once delivery: a retried `Open`
        /// carrying the same id returns the original `Opened` response
        /// instead of opening duplicate sessions. `None` opts out (every
        /// call opens fresh sessions, as before this field existed).
        request: Option<u64>,
        /// Wire-format entity specs, one session each.
        entities: Vec<EntitySpec>,
        /// Tasks per round override.
        k: Option<usize>,
        /// Per-session budget override.
        budget: Option<usize>,
        /// Assumed crowd accuracy override.
        pc: Option<f64>,
    },
    /// Returns the session's open round (idempotent) or selects the next
    /// one under its budget.
    Select {
        /// Target session id.
        session: u64,
    },
    /// Streams crowd answers into the session's open round — any subset,
    /// any order; duplicates and late answers are counted and dropped.
    Absorb {
        /// Target session id.
        session: u64,
        /// The answers.
        answers: Vec<WireAnswer>,
    },
    /// Serialises every session (posterior, budget ledger, RNG state, the
    /// open round's partial answers) to a file on the daemon's disk.
    Snapshot {
        /// Destination path.
        path: String,
    },
    /// Replaces the daemon's sessions with a snapshot file's contents.
    Restore {
        /// Source path.
        path: String,
    },
    /// Per-session bookkeeping: entropy, rounds, budget spent.
    Status {
        /// Target session id.
        session: u64,
    },
    /// Aggregate bookkeeping over all sessions.
    Metrics,
    /// The registry-wide quality-vs-cost trace (offline-comparable).
    Trace,
    /// Stops the daemon after this response.
    Shutdown,
}

/// A daemon response (one JSON line).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// Sessions opened, in spec order, with their crowd answer seeds.
    Opened {
        /// One summary per opened session.
        sessions: Vec<OpenedSession>,
    },
    /// The session's open round: answer these tasks via `Absorb`.
    Round {
        /// Session id.
        session: u64,
        /// 1-based round number the round will close as.
        round: usize,
        /// Published tasks in selection order.
        tasks: Vec<PublishedTask>,
    },
    /// The session's budget is exhausted (or its selector stopped); no
    /// further rounds will open.
    Exhausted {
        /// Session id.
        session: u64,
        /// Rounds closed over the session's lifetime.
        rounds: usize,
        /// Judgments spent.
        spent: usize,
    },
    /// Ingestion report for one `Absorb` call.
    Absorbed {
        /// Session id.
        session: u64,
        /// Answers applied.
        accepted: usize,
        /// Duplicates / late answers dropped.
        duplicates: usize,
        /// Open-round answers still outstanding.
        pending: usize,
        /// The closed round's record when this call completed the round.
        closed: Option<RoundPoint>,
    },
    /// Snapshot written.
    Snapshotted {
        /// Destination path.
        path: String,
        /// Sessions serialised.
        sessions: u64,
    },
    /// Snapshot loaded; the daemon's sessions were replaced.
    Restored {
        /// Source path.
        path: String,
        /// Sessions restored.
        sessions: u64,
    },
    /// Per-session bookkeeping.
    Status {
        /// Session id.
        session: u64,
        /// Entity name.
        name: String,
        /// Number of facts.
        facts: usize,
        /// Rounds closed.
        rounds: usize,
        /// Judgments spent.
        spent: usize,
        /// Budget remaining.
        remaining: usize,
        /// Open-round answers outstanding (0 when no round is open).
        pending: usize,
        /// Whether the session stopped selecting for good.
        exhausted: bool,
        /// Posterior utility `Q(F)`.
        utility: f64,
        /// Posterior entropy in bits.
        entropy: f64,
    },
    /// Aggregate metrics.
    Metrics {
        /// The registry-wide counters.
        metrics: RegistryMetrics,
    },
    /// The registry-wide quality-vs-cost trace.
    Trace {
        /// Assembled exactly like the offline runners assemble theirs.
        trace: ExperimentTrace,
    },
    /// The request failed; nothing was changed unless stated otherwise.
    Error {
        /// Human-readable reason.
        message: String,
    },
    /// Acknowledges `Shutdown`; the daemon stops.
    Bye,
}

/// Encodes a protocol message as its wire line (no trailing newline).
pub fn encode<T: Serialize>(message: &T) -> String {
    serde_json::to_string(message).expect("protocol types serialise infallibly")
}

/// Decodes one wire line.
pub fn decode<T: serde::Deserialize>(line: &str) -> Result<T, String> {
    serde_json::from_str(line).map_err(|e| format!("malformed protocol line: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_roundtrip_through_the_wire() {
        let requests = vec![
            Request::Open {
                request: Some(7),
                entities: vec![EntitySpec::simple("b", vec![0.5, 0.7], vec![true, false])],
                k: Some(2),
                budget: None,
                pc: Some(0.8),
            },
            Request::Select { session: 3 },
            Request::Absorb {
                session: 3,
                answers: vec![WireAnswer {
                    task: 9,
                    value: true,
                }],
            },
            Request::Snapshot {
                path: "/tmp/x.json".into(),
            },
            Request::Restore {
                path: "/tmp/x.json".into(),
            },
            Request::Status { session: 0 },
            Request::Metrics,
            Request::Trace,
            Request::Shutdown,
        ];
        for request in requests {
            let line = encode(&request);
            assert!(!line.contains('\n'), "one line per message: {line:?}");
            let back: Request = decode(&line).unwrap();
            assert_eq!(back, request);
        }
    }

    #[test]
    fn responses_roundtrip_through_the_wire() {
        let responses = vec![
            Response::Error {
                message: "nope".into(),
            },
            Response::Bye,
            Response::Absorbed {
                session: 1,
                accepted: 2,
                duplicates: 1,
                pending: 0,
                closed: None,
            },
        ];
        for response in responses {
            let back: Response = decode(&encode(&response)).unwrap();
            assert_eq!(back, response);
        }
    }

    #[test]
    fn open_lines_from_before_request_ids_still_decode() {
        // Clients predating the `request` field omit it entirely; the
        // missing field must read back as `None`, not a decode error.
        let line = r#"{"Open": {"entities": [], "k": 2, "budget": null, "pc": null}}"#;
        let back: Request = decode(line).unwrap();
        assert_eq!(
            back,
            Request::Open {
                request: None,
                entities: vec![],
                k: Some(2),
                budget: None,
                pc: None,
            }
        );
    }

    #[test]
    fn malformed_lines_are_rejected() {
        assert!(decode::<Request>("{not json").is_err());
        assert!(decode::<Request>("{\"Frobnicate\": {}}").is_err());
    }
}
