//! The `crowdfusion-serve` wire protocol: line-delimited JSON over TCP or
//! stdio.
//!
//! Every request and every response is one JSON document on one line.
//! Verbs mirror the session lifecycle: `open` registers entities (priors
//! built on the pool), `select` returns the next task batch under the
//! session budget, `absorb` streams crowd answers in — partial batches,
//! out of order, duplicates rejected — `snapshot`/`restore` persist the
//! whole daemon, and `status`/`metrics`/`trace` read the bookkeeping out.
//!
//! Encoding follows the vendored serde stand-in's conventions: unit enum
//! variants are their name as a string (`"Metrics"`), struct variants are
//! a single-key object (`{"Select": {"session": 0}}`).
//!
//! # Versioned framing
//!
//! The wire is versioned: a client may wrap any request in an envelope,
//! `{"v": 1, "body": {"Select": {"session": 0}}}`, and the daemon
//! answers in the same envelope. A client may also negotiate up front
//! with [`Request::Hello`] and gets [`Response::Welcome`] naming the
//! agreed version plus the daemon's supported range. An envelope naming
//! a version outside the range gets a structured
//! [`Response::UnsupportedVersion`], never a silent drop.
//!
//! Bare (un-enveloped) lines are the pre-versioning wire format and are
//! accepted as version 1 for one release; their replies are bare too, so
//! byte-for-byte compatibility with old clients is preserved. A
//! top-level `"v"` key is what distinguishes an envelope — bare requests
//! are single-key objects named after a capitalised variant, so the two
//! framings cannot collide.

use crowdfusion_core::round::RoundPoint;
use crowdfusion_core::session::{EntitySpec, OpenedSession, PublishedTask, RegistryMetrics};
use crowdfusion_core::system::ExperimentTrace;
use serde::{Deserialize, Serialize, Value};

/// Oldest wire version this daemon still speaks.
pub const WIRE_VERSION_MIN: u64 = 1;
/// Newest wire version this daemon speaks.
pub const WIRE_VERSION_MAX: u64 = 1;

/// One streamed crowd answer: the published task id and the judgment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WireAnswer {
    /// The task id from a `Round` response.
    pub task: u64,
    /// The crowd judgment.
    pub value: bool,
}

/// A client request (one JSON line).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Protocol negotiation: the client names the wire version it wants
    /// to speak; the daemon answers `Welcome` (agreed) or
    /// `UnsupportedVersion` (with the supported range).
    Hello {
        /// The wire version the client proposes.
        v: u64,
    },
    /// Registers entities as new sessions; priors are built in parallel on
    /// the daemon's worker pool. `k`/`budget`/`pc` override the daemon's
    /// per-session defaults when present.
    Open {
        /// Idempotency token for at-least-once delivery: a retried `Open`
        /// carrying the same id returns the original `Opened` response
        /// instead of opening duplicate sessions. `None` opts out (every
        /// call opens fresh sessions, as before this field existed).
        request: Option<u64>,
        /// Wire-format entity specs, one session each.
        entities: Vec<EntitySpec>,
        /// Tasks per round override.
        k: Option<usize>,
        /// Per-session budget override.
        budget: Option<usize>,
        /// Assumed crowd accuracy override.
        pc: Option<f64>,
    },
    /// Returns the session's open round (idempotent) or selects the next
    /// one under its budget.
    Select {
        /// Target session id.
        session: u64,
    },
    /// Streams crowd answers into the session's open round — any subset,
    /// any order; duplicates and late answers are counted and dropped.
    Absorb {
        /// Target session id.
        session: u64,
        /// The answers.
        answers: Vec<WireAnswer>,
    },
    /// Serialises every session (posterior, budget ledger, RNG state, the
    /// open round's partial answers) to a file on the daemon's disk.
    Snapshot {
        /// Destination path.
        path: String,
    },
    /// Replaces the daemon's sessions with a snapshot file's contents.
    Restore {
        /// Source path.
        path: String,
    },
    /// Global budget mode only: admit the highest-marginal-gain idle
    /// session's next round against the shared budget. Answered with
    /// `Round` (the admitted session's tasks), `NoWork` (nothing
    /// schedulable or budget exhausted) or `Error` (per-session daemons
    /// reject the verb).
    Schedule {
        /// Idempotency token for at-least-once delivery: a retried
        /// `Schedule` carrying the same id re-reads the originally
        /// admitted session instead of admitting (and charging) twice.
        request: Option<u64>,
    },
    /// The shared-budget ledger and the scheduler's next pick (aggregate
    /// per-session figures when the scheduler is off).
    BudgetStatus,
    /// Per-session bookkeeping: entropy, rounds, budget spent.
    Status {
        /// Target session id.
        session: u64,
    },
    /// Aggregate bookkeeping over all sessions.
    Metrics,
    /// The registry-wide quality-vs-cost trace (offline-comparable).
    Trace,
    /// Stops the daemon after this response.
    Shutdown,
}

/// A daemon response (one JSON line).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// `Hello` accepted: the connection speaks version `v`.
    Welcome {
        /// The agreed wire version.
        v: u64,
        /// Oldest version the daemon speaks.
        min: u64,
        /// Newest version the daemon speaks.
        max: u64,
    },
    /// The client asked for a wire version the daemon does not speak.
    UnsupportedVersion {
        /// The version the client asked for.
        requested: u64,
        /// Oldest version the daemon speaks.
        min: u64,
        /// Newest version the daemon speaks.
        max: u64,
    },
    /// Sessions opened, in spec order, with their crowd answer seeds.
    Opened {
        /// One summary per opened session.
        sessions: Vec<OpenedSession>,
    },
    /// The session's open round: answer these tasks via `Absorb`.
    Round {
        /// Session id.
        session: u64,
        /// 1-based round number the round will close as.
        round: usize,
        /// Published tasks in selection order.
        tasks: Vec<PublishedTask>,
    },
    /// The session's budget is exhausted (or its selector stopped); no
    /// further rounds will open.
    Exhausted {
        /// Session id.
        session: u64,
        /// Rounds closed over the session's lifetime.
        rounds: usize,
        /// Judgments spent.
        spent: usize,
    },
    /// Ingestion report for one `Absorb` call.
    Absorbed {
        /// Session id.
        session: u64,
        /// Answers applied.
        accepted: usize,
        /// Duplicates / late answers dropped.
        duplicates: usize,
        /// Open-round answers still outstanding.
        pending: usize,
        /// The closed round's record when this call completed the round.
        closed: Option<RoundPoint>,
    },
    /// Snapshot written.
    Snapshotted {
        /// Destination path.
        path: String,
        /// Sessions serialised.
        sessions: u64,
    },
    /// Snapshot loaded; the daemon's sessions were replaced.
    Restored {
        /// Source path.
        path: String,
        /// Sessions restored.
        sessions: u64,
    },
    /// Per-session bookkeeping.
    Status {
        /// Session id.
        session: u64,
        /// Entity name.
        name: String,
        /// Number of facts.
        facts: usize,
        /// Rounds closed.
        rounds: usize,
        /// Judgments spent.
        spent: usize,
        /// Budget remaining.
        remaining: usize,
        /// Open-round answers outstanding (0 when no round is open).
        pending: usize,
        /// Whether the session stopped selecting for good.
        exhausted: bool,
        /// Posterior utility `Q(F)`.
        utility: f64,
        /// Posterior entropy in bits.
        entropy: f64,
    },
    /// Aggregate metrics.
    Metrics {
        /// The registry-wide counters.
        metrics: RegistryMetrics,
    },
    /// The registry-wide quality-vs-cost trace.
    Trace {
        /// Assembled exactly like the offline runners assemble theirs.
        trace: ExperimentTrace,
    },
    /// `Schedule` found nothing to admit: every session is busy or
    /// exhausted, or the shared budget is spent.
    NoWork {
        /// Judgments left in the shared budget.
        remaining: u64,
    },
    /// Global mode refused a direct `Select` because it is not that
    /// session's turn: admission goes strictly in marginal-gain order.
    Deferred {
        /// The session the client asked for.
        session: u64,
        /// The session the scheduler would admit next (`None` when the
        /// budget is exhausted or nothing is schedulable).
        preferred: Option<u64>,
    },
    /// The budget ledger (`BudgetStatus`).
    Budget {
        /// `"global"` or `"per-session"`.
        mode: String,
        /// Total judgments granted (summed session budgets when
        /// per-session).
        budget: u64,
        /// Judgments charged so far.
        spent: u64,
        /// Judgments left.
        remaining: u64,
        /// Global mode: the session the scheduler would admit next.
        next_session: Option<u64>,
        /// Global mode: that session's gain, bit-encoded (see
        /// [`crowdfusion_core::sched::gain_bits`]).
        next_gain_bits: Option<u64>,
    },
    /// The request failed; nothing was changed unless stated otherwise.
    Error {
        /// Human-readable reason.
        message: String,
    },
    /// Acknowledges `Shutdown`; the daemon stops.
    Bye,
}

/// Encodes a protocol message as its wire line (no trailing newline).
pub fn encode<T: Serialize>(message: &T) -> String {
    serde_json::to_string(message).expect("protocol types serialise infallibly")
}

/// Decodes one wire line.
pub fn decode<T: serde::Deserialize>(line: &str) -> Result<T, String> {
    serde_json::from_str(line).map_err(|e| format!("malformed protocol line: {e}"))
}

/// How a request line was framed; replies echo the same framing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Framing {
    /// A bare pre-versioning line, accepted as version 1 for one
    /// release; the reply is bare too.
    Legacy,
    /// A `{"v": N, "body": …}` envelope; the reply carries the same
    /// version.
    Versioned(u64),
}

impl Framing {
    /// The wire version this framing speaks.
    pub fn version(self) -> u64 {
        match self {
            Framing::Legacy => 1,
            Framing::Versioned(v) => v,
        }
    }
}

/// Whether `v` is a wire version this build speaks.
pub fn version_supported(v: u64) -> bool {
    (WIRE_VERSION_MIN..=WIRE_VERSION_MAX).contains(&v)
}

/// The structured refusal for a version outside the supported range.
pub fn unsupported_version(requested: u64) -> Response {
    Response::UnsupportedVersion {
        requested,
        min: WIRE_VERSION_MIN,
        max: WIRE_VERSION_MAX,
    }
}

/// Decodes one request line, envelope-aware. Returns the framing the
/// reply must use plus either the request or the ready-made error
/// response (malformed line, unsupported version, envelope without a
/// body). The error side never loses the framing: a well-formed envelope
/// with a bad body is still answered in that envelope.
pub fn decode_framed(line: &str) -> (Framing, Result<Request, Response>) {
    let value: Value = match serde_json::from_str(line) {
        Ok(value) => value,
        Err(e) => {
            return (
                Framing::Legacy,
                Err(Response::Error {
                    message: format!("malformed protocol line: {e}"),
                }),
            )
        }
    };
    let Some(version_field) = value.get_field("v") else {
        // No top-level "v": a bare legacy line (request variants are
        // capitalised, so the keys cannot collide).
        return (
            Framing::Legacy,
            decode::<Request>(line).map_err(|message| Response::Error { message }),
        );
    };
    let version = match version_field {
        Value::Int(v) if *v >= 0 => *v as u64,
        Value::UInt(v) => *v,
        other => {
            return (
                Framing::Versioned(WIRE_VERSION_MAX),
                Err(Response::Error {
                    message: format!("envelope \"v\" must be an integer, got {}", other.kind()),
                }),
            )
        }
    };
    if !version_supported(version) {
        return (
            Framing::Versioned(WIRE_VERSION_MAX),
            Err(unsupported_version(version)),
        );
    }
    let framing = Framing::Versioned(version);
    let Some(body) = value.get_field("body") else {
        return (
            framing,
            Err(Response::Error {
                message: "envelope is missing its \"body\" field".to_string(),
            }),
        );
    };
    match Request::from_value(body) {
        Ok(request) => (framing, Ok(request)),
        Err(e) => (
            framing,
            Err(Response::Error {
                message: format!("malformed protocol line: {e}"),
            }),
        ),
    }
}

/// Encodes a response under the framing its request arrived in.
pub fn encode_framed(framing: Framing, response: &Response) -> String {
    match framing {
        Framing::Legacy => encode(response),
        Framing::Versioned(v) => {
            let envelope = Value::Map(vec![
                ("v".to_string(), response_version_value(v)),
                ("body".to_string(), response.to_value()),
            ]);
            encode(&envelope)
        }
    }
}

/// The envelope's version field, kept canonical (small unsigned values
/// normalise to `Int` in the vendored value model).
fn response_version_value(v: u64) -> Value {
    match i64::try_from(v) {
        Ok(v) => Value::Int(v),
        Err(_) => Value::UInt(v),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_roundtrip_through_the_wire() {
        let requests = vec![
            Request::Open {
                request: Some(7),
                entities: vec![EntitySpec::simple("b", vec![0.5, 0.7], vec![true, false])],
                k: Some(2),
                budget: None,
                pc: Some(0.8),
            },
            Request::Select { session: 3 },
            Request::Absorb {
                session: 3,
                answers: vec![WireAnswer {
                    task: 9,
                    value: true,
                }],
            },
            Request::Snapshot {
                path: "/tmp/x.json".into(),
            },
            Request::Restore {
                path: "/tmp/x.json".into(),
            },
            Request::Status { session: 0 },
            Request::Schedule { request: Some(12) },
            Request::Schedule { request: None },
            Request::BudgetStatus,
            Request::Metrics,
            Request::Trace,
            Request::Shutdown,
        ];
        for request in requests {
            let line = encode(&request);
            assert!(!line.contains('\n'), "one line per message: {line:?}");
            let back: Request = decode(&line).unwrap();
            assert_eq!(back, request);
        }
    }

    #[test]
    fn responses_roundtrip_through_the_wire() {
        let responses = vec![
            Response::Error {
                message: "nope".into(),
            },
            Response::Bye,
            Response::Absorbed {
                session: 1,
                accepted: 2,
                duplicates: 1,
                pending: 0,
                closed: None,
            },
            Response::NoWork { remaining: 4 },
            Response::Deferred {
                session: 2,
                preferred: Some(0),
            },
            Response::Budget {
                mode: "global".into(),
                budget: 40,
                spent: 13,
                remaining: 27,
                next_session: Some(1),
                next_gain_bits: Some(crowdfusion_core::sched::gain_bits(0.42)),
            },
        ];
        for response in responses {
            let back: Response = decode(&encode(&response)).unwrap();
            assert_eq!(back, response);
        }
    }

    #[test]
    fn open_lines_from_before_request_ids_still_decode() {
        // Clients predating the `request` field omit it entirely; the
        // missing field must read back as `None`, not a decode error.
        let line = r#"{"Open": {"entities": [], "k": 2, "budget": null, "pc": null}}"#;
        let back: Request = decode(line).unwrap();
        assert_eq!(
            back,
            Request::Open {
                request: None,
                entities: vec![],
                k: Some(2),
                budget: None,
                pc: None,
            }
        );
    }

    #[test]
    fn malformed_lines_are_rejected() {
        assert!(decode::<Request>("{not json").is_err());
        assert!(decode::<Request>("{\"Frobnicate\": {}}").is_err());
    }

    #[test]
    fn bare_lines_from_old_clients_still_speak_version_one() {
        // Pinned pre-envelope client bytes: these exact lines worked
        // before versioning shipped and must keep working for one
        // release, answered bare (no envelope) so old readers parse.
        for line in [
            r#"{"Select": {"session": 3}}"#,
            r#""Metrics""#,
            r#"{"Open": {"entities": [], "k": 2, "budget": null, "pc": null}}"#,
        ] {
            let (framing, decoded) = decode_framed(line);
            assert_eq!(framing, Framing::Legacy);
            assert_eq!(framing.version(), 1);
            decoded.unwrap_or_else(|e| panic!("legacy line {line:?} must decode, got {e:?}"));
        }
        assert_eq!(
            encode_framed(Framing::Legacy, &Response::Bye),
            encode(&Response::Bye),
            "legacy replies must stay byte-identical to the old wire"
        );
    }

    #[test]
    fn enveloped_lines_round_trip_with_their_version() {
        let line = r#"{"v": 1, "body": {"Select": {"session": 3}}}"#;
        let (framing, decoded) = decode_framed(line);
        assert_eq!(framing, Framing::Versioned(1));
        assert_eq!(decoded.unwrap(), Request::Select { session: 3 });
        let reply = encode_framed(framing, &Response::Bye);
        let value: Value = serde_json::from_str(&reply).unwrap();
        assert_eq!(value.get_field("v"), Some(&Value::Int(1)));
        assert_eq!(
            Response::from_value(value.get_field("body").unwrap()).unwrap(),
            Response::Bye
        );
    }

    #[test]
    fn unknown_versions_get_the_supported_range_back() {
        let line = r#"{"v": 9, "body": "Metrics"}"#;
        let (framing, decoded) = decode_framed(line);
        assert_eq!(framing, Framing::Versioned(WIRE_VERSION_MAX));
        assert_eq!(
            decoded.unwrap_err(),
            Response::UnsupportedVersion {
                requested: 9,
                min: WIRE_VERSION_MIN,
                max: WIRE_VERSION_MAX,
            }
        );
    }

    #[test]
    fn broken_envelopes_keep_their_framing() {
        // A well-formed envelope with a bad body is answered *in* the
        // envelope — the client committed to versioned framing.
        let (framing, decoded) = decode_framed(r#"{"v": 1, "body": {"Frobnicate": {}}}"#);
        assert_eq!(framing, Framing::Versioned(1));
        assert!(matches!(decoded, Err(Response::Error { .. })));
        let (framing, decoded) = decode_framed(r#"{"v": 1}"#);
        assert_eq!(framing, Framing::Versioned(1));
        let Err(Response::Error { message }) = decoded else {
            panic!("missing body must error");
        };
        assert!(message.contains("body"), "got {message:?}");
        // A non-integer version cannot pick a framing version; the reply
        // uses the newest the daemon speaks.
        let (framing, decoded) = decode_framed(r#"{"v": "one", "body": "Metrics"}"#);
        assert_eq!(framing, Framing::Versioned(WIRE_VERSION_MAX));
        assert!(matches!(decoded, Err(Response::Error { .. })));
    }
}
