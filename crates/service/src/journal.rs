//! The write-ahead answer journal.
//!
//! Every mutating effect the service applies — opening sessions, closing
//! a selection, absorbing an answer batch, evicting idle sessions — is
//! journalled *before* it touches in-memory state. A record is one frame:
//!
//! ```text
//! [u32 payload-len LE] [u32 crc32(payload) LE] [payload: JSON Record]
//! ```
//!
//! Appends are fsync-batched (`sync_every`); a crash can therefore lose a
//! suffix of recent records, and a torn `write(2)` can leave a partial
//! frame at the tail. [`read_journal`] handles both the same way: it
//! keeps the longest prefix of well-formed frames with strictly
//! increasing sequence numbers and reports everything after it as torn.
//! The writer then truncates the file to that prefix, so garbage never
//! sits under fresh appends.
//!
//! Payloads are JSON rather than a packed binary layout on purpose: the
//! snapshot beside the journal is already JSON, the vendored serde stack
//! is the one codec every wire type supports, and a human can read a
//! journal with `xxd | less` when debugging a recovery. The frame header
//! supplies what JSON alone cannot — torn-tail detection (length) and
//! bit-rot detection (checksum).

use crate::fault::{FaultAction, FaultPlan, FaultPoint, SimulatedCrash};
use crate::protocol::WireAnswer;
use crowdfusion_core::session::EntitySpec;
use serde::{Deserialize, Serialize};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

/// Upper bound on one record's payload. Anything larger in a header is
/// corruption (no legitimate effect serialises to 64 MiB), so the reader
/// can reject it without attempting the allocation.
pub const MAX_RECORD_BYTES: u32 = 64 << 20;

/// Bytes of frame header preceding each payload.
pub const FRAME_HEADER_BYTES: u64 = 8;

/// One journalled mutation. Mirrors the mutating verbs of the wire
/// protocol, minus read-only bookkeeping; `Evict` has no wire verb — it
/// records TTL sweeps so replay never consults a clock.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Effect {
    /// Sessions opened from a batch of entity specs.
    Open {
        /// The client's idempotency token, if it sent one.
        request: Option<u64>,
        /// The specs, in session order.
        entities: Vec<EntitySpec>,
        /// Tasks-per-round override.
        k: Option<usize>,
        /// Budget override.
        budget: Option<usize>,
        /// Assumed-accuracy override.
        pc: Option<f64>,
    },
    /// A round selection that mutated the session (opened a round or
    /// marked it exhausted). Idempotent re-reads of an open round are not
    /// journalled.
    Select {
        /// Target session.
        session: u64,
    },
    /// An answer batch absorbed into the session's open round.
    Absorb {
        /// Target session.
        session: u64,
        /// The batch, exactly as received.
        answers: Vec<WireAnswer>,
    },
    /// Sessions evicted by a TTL sweep.
    Evict {
        /// The evicted session ids, ascending.
        sessions: Vec<u64>,
    },
    /// A selection admitted by the global budget scheduler. Replays as a
    /// capped select: the session may open a round of at most `cap`
    /// tasks, where `cap` was the global budget remaining at admission
    /// time. Charging is derived from the opened round during replay, so
    /// the ledger needs no record of its own.
    Schedule {
        /// The client's idempotency token, if it sent one.
        request: Option<u64>,
        /// The admitted session.
        session: u64,
        /// Global budget remaining at admission (caps the round size).
        cap: usize,
    },
}

/// One journal record: a monotonically increasing sequence number plus
/// the effect. The sequence is the recovery cursor — a snapshot stores
/// the last sequence it covers, and replay skips records at or below it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Record {
    /// Strictly increasing, starting at 1 for a fresh journal.
    pub seq: u64,
    /// The mutation.
    pub effect: Effect,
}

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), bitwise. The
/// journal checksums one small payload per record; table lookup would be
/// noise next to the fsync.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = !0;
    for &byte in bytes {
        crc ^= byte as u32;
        for _ in 0..8 {
            let low_bit_set = crc & 1 != 0;
            crc >>= 1;
            if low_bit_set {
                crc ^= 0xEDB8_8320;
            }
        }
    }
    !crc
}

/// Encodes one record as its on-disk frame.
pub fn encode_frame(record: &Record) -> Vec<u8> {
    let payload = crate::protocol::encode(record).into_bytes();
    assert!(
        payload.len() as u64 <= MAX_RECORD_BYTES as u64,
        "journal record exceeds MAX_RECORD_BYTES"
    );
    let mut frame = Vec::with_capacity(FRAME_HEADER_BYTES as usize + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&crc32(&payload).to_le_bytes());
    frame.extend_from_slice(&payload);
    frame
}

/// What [`read_journal`] recovered.
#[derive(Debug)]
pub struct JournalContents {
    /// The longest well-formed strictly-increasing-seq prefix.
    pub records: Vec<Record>,
    /// Byte length of that prefix — truncate the file here before
    /// appending.
    pub valid_len: u64,
    /// Whether bytes past `valid_len` existed (torn tail or bit rot).
    pub torn: bool,
}

/// Reads a journal file, keeping the longest valid prefix. A missing
/// file is an empty journal (first boot); every corruption mode — short
/// header, impossible length, short payload, checksum mismatch, broken
/// JSON, non-increasing sequence — ends the prefix at the previous
/// record boundary and flags `torn`.
pub fn read_journal(path: &Path) -> std::io::Result<JournalContents> {
    let bytes = match std::fs::read(path) {
        Ok(bytes) => bytes,
        Err(err) if err.kind() == std::io::ErrorKind::NotFound => {
            return Ok(JournalContents {
                records: Vec::new(),
                valid_len: 0,
                torn: false,
            })
        }
        Err(err) => return Err(err),
    };

    let mut records = Vec::new();
    let mut offset = 0usize;
    let mut last_seq = 0u64;
    let torn = loop {
        let remaining = &bytes[offset..];
        if remaining.is_empty() {
            break false;
        }
        if remaining.len() < FRAME_HEADER_BYTES as usize {
            break true;
        }
        let len = u32::from_le_bytes([remaining[0], remaining[1], remaining[2], remaining[3]]);
        let expected_crc =
            u32::from_le_bytes([remaining[4], remaining[5], remaining[6], remaining[7]]);
        if len > MAX_RECORD_BYTES {
            break true;
        }
        let frame_end = FRAME_HEADER_BYTES as usize + len as usize;
        if remaining.len() < frame_end {
            break true;
        }
        let payload = &remaining[FRAME_HEADER_BYTES as usize..frame_end];
        if crc32(payload) != expected_crc {
            break true;
        }
        let Ok(text) = std::str::from_utf8(payload) else {
            break true;
        };
        let Ok(record) = crate::protocol::decode::<Record>(text) else {
            break true;
        };
        if record.seq <= last_seq {
            break true;
        }
        last_seq = record.seq;
        records.push(record);
        offset += frame_end;
    };

    Ok(JournalContents {
        records,
        valid_len: offset as u64,
        torn,
    })
}

/// Appends framed records to a journal file with batched fsync.
///
/// Failure discipline: if an append's bytes cannot all be written, the
/// writer rolls the file back to the last good frame boundary so later
/// appends stay readable; if even the rollback fails, the writer poisons
/// itself and every subsequent operation errors — better a loudly dead
/// journal than one silently interleaving good frames with garbage.
pub struct JournalWriter {
    file: File,
    /// Bytes of well-formed frames currently on disk.
    len: u64,
    /// Appends since the last fsync.
    pending: usize,
    sync_every: usize,
    faults: FaultPlan,
    poisoned: bool,
}

impl JournalWriter {
    /// Opens (creating if absent) the journal at `path`, trusting
    /// `valid_len` from a prior [`read_journal`]: the file is truncated
    /// there, discarding any torn tail, and appends continue from it.
    /// `sync_every` = 1 fsyncs every record; larger values batch.
    pub fn open(
        path: &Path,
        valid_len: u64,
        sync_every: usize,
        faults: FaultPlan,
    ) -> std::io::Result<JournalWriter> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        file.set_len(valid_len)?;
        let mut file = file;
        file.seek(SeekFrom::Start(valid_len))?;
        Ok(JournalWriter {
            file,
            len: valid_len,
            pending: 0,
            sync_every: sync_every.max(1),
            faults,
            poisoned: false,
        })
    }

    /// Bytes of well-formed frames on disk (not counting an in-flight
    /// torn write).
    pub fn len_bytes(&self) -> u64 {
        self.len
    }

    /// Appends one record. The record is durable once this returns and a
    /// subsequent [`JournalWriter::sync`] (or batched fsync) completes.
    pub fn append(&mut self, record: &Record) -> std::io::Result<()> {
        if self.poisoned {
            return Err(std::io::Error::other(
                "journal writer poisoned by an earlier unrecoverable write error",
            ));
        }
        let frame = encode_frame(record);
        match self.faults.check(FaultPoint::JournalAppend) {
            None => {}
            Some(FaultAction::Crash) => {
                return Err(SimulatedCrash {
                    point: FaultPoint::JournalAppend,
                }
                .into())
            }
            Some(FaultAction::Torn { keep_bytes }) => {
                // Persist a prefix of the frame — what a power cut
                // mid-write leaves behind — then die.
                let keep = keep_bytes.min(frame.len());
                self.file.write_all(&frame[..keep])?;
                self.file.sync_data()?;
                return Err(SimulatedCrash {
                    point: FaultPoint::JournalAppend,
                }
                .into());
            }
            Some(other) => panic!("journal append cannot honour {other:?}"),
        }
        if let Err(err) = self.file.write_all(&frame) {
            self.rollback_to_len();
            return Err(err);
        }
        self.len += frame.len() as u64;
        self.pending += 1;
        if self.pending >= self.sync_every {
            self.sync()?;
        }
        Ok(())
    }

    /// Forces any batched appends to disk.
    pub fn sync(&mut self) -> std::io::Result<()> {
        if self.pending == 0 {
            return Ok(());
        }
        self.file.sync_data()?;
        self.pending = 0;
        Ok(())
    }

    /// Empties the journal — called right after a snapshot becomes
    /// durable, making the snapshot the new recovery base.
    pub fn truncate_all(&mut self) -> std::io::Result<()> {
        if self.poisoned {
            return Err(std::io::Error::other(
                "journal writer poisoned by an earlier unrecoverable write error",
            ));
        }
        self.faults
            .crash_if_scheduled(FaultPoint::JournalTruncate)?;
        self.file.set_len(0)?;
        self.file.seek(SeekFrom::Start(0))?;
        self.file.sync_data()?;
        self.len = 0;
        self.pending = 0;
        Ok(())
    }

    /// After a failed write: drop the partial frame so the file ends at a
    /// record boundary. If the file cannot be restored, poison the writer.
    fn rollback_to_len(&mut self) {
        let restored = self
            .file
            .set_len(self.len)
            .and_then(|()| self.file.seek(SeekFrom::Start(self.len)).map(|_| ()));
        if restored.is_err() {
            self.poisoned = true;
        }
    }
}

/// Reads the raw bytes of a journal file (testing / diagnostics).
pub fn raw_bytes(path: &Path) -> std::io::Result<Vec<u8>> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    Ok(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    static NEXT_DIR: AtomicU64 = AtomicU64::new(0);

    fn temp_journal() -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "crowdfusion-journal-{}-{}",
            std::process::id(),
            NEXT_DIR.fetch_add(1, Ordering::SeqCst)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("wal.log")
    }

    fn sample_records(n: u64) -> Vec<Record> {
        (1..=n)
            .map(|seq| Record {
                seq,
                effect: match seq % 3 {
                    0 => Effect::Select { session: seq },
                    1 => Effect::Absorb {
                        session: seq,
                        answers: vec![
                            WireAnswer {
                                task: seq << 32,
                                value: seq % 2 == 0,
                            },
                            WireAnswer {
                                task: (seq << 32) | 1,
                                value: true,
                            },
                        ],
                    },
                    _ => Effect::Evict {
                        sessions: vec![seq, seq + 1],
                    },
                },
            })
            .collect()
    }

    fn write_all(path: &Path, records: &[Record]) {
        let mut writer = JournalWriter::open(path, 0, 1, FaultPlan::none()).unwrap();
        for record in records {
            writer.append(record).unwrap();
        }
        writer.sync().unwrap();
    }

    #[test]
    fn schedule_effect_roundtrips_and_old_frames_still_decode() {
        let path = temp_journal();
        let records = vec![
            Record {
                seq: 1,
                effect: Effect::Select { session: 3 },
            },
            Record {
                seq: 2,
                effect: Effect::Schedule {
                    request: Some(0xBEEF),
                    session: 3,
                    cap: 11,
                },
            },
            Record {
                seq: 3,
                effect: Effect::Schedule {
                    request: None,
                    session: 4,
                    cap: 2,
                },
            },
        ];
        write_all(&path, &records);
        let contents = read_journal(&path).unwrap();
        assert_eq!(contents.records, records);
        assert!(!contents.torn);

        // A journal written before the scheduler existed (no Schedule
        // frames) must still read back unchanged.
        let legacy_path = temp_journal();
        let legacy = sample_records(6);
        assert!(legacy
            .iter()
            .all(|r| !matches!(r.effect, Effect::Schedule { .. })));
        write_all(&legacy_path, &legacy);
        assert_eq!(read_journal(&legacy_path).unwrap().records, legacy);
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC-32 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn missing_file_is_an_empty_journal() {
        let path = temp_journal();
        let contents = read_journal(&path).unwrap();
        assert!(contents.records.is_empty());
        assert_eq!(contents.valid_len, 0);
        assert!(!contents.torn);
    }

    #[test]
    fn records_roundtrip_through_the_file() {
        let path = temp_journal();
        let records = sample_records(9);
        write_all(&path, &records);
        let contents = read_journal(&path).unwrap();
        assert_eq!(contents.records, records);
        assert!(!contents.torn);
        assert_eq!(contents.valid_len, raw_bytes(&path).unwrap().len() as u64);
    }

    #[test]
    fn every_truncation_point_recovers_the_full_frame_prefix() {
        // The byte-level torn-tail sweep: chop the journal at EVERY byte
        // length and check recovery keeps exactly the fully contained
        // frames, flagging torn unless the cut is a frame boundary.
        let path = temp_journal();
        let records = sample_records(4);
        write_all(&path, &records);
        let full = raw_bytes(&path).unwrap();

        let mut boundaries = vec![0u64];
        let mut at = 0u64;
        for record in &records {
            at += FRAME_HEADER_BYTES + crate::protocol::encode(record).len() as u64;
            boundaries.push(at);
        }
        assert_eq!(*boundaries.last().unwrap(), full.len() as u64);

        let torn_path = temp_journal();
        for cut in 0..=full.len() {
            std::fs::write(&torn_path, &full[..cut]).unwrap();
            let contents = read_journal(&torn_path).unwrap();
            let expect_frames = boundaries.iter().filter(|&&b| b <= cut as u64).count() - 1;
            assert_eq!(contents.records.len(), expect_frames, "cut at byte {cut}");
            assert_eq!(contents.records[..], records[..expect_frames]);
            assert_eq!(contents.valid_len, boundaries[expect_frames]);
            let at_boundary = boundaries.contains(&(cut as u64));
            assert_eq!(contents.torn, !at_boundary, "cut at byte {cut}");
        }
    }

    #[test]
    fn corrupted_payload_byte_ends_the_prefix() {
        let path = temp_journal();
        let records = sample_records(3);
        write_all(&path, &records);
        let mut bytes = raw_bytes(&path).unwrap();
        // Flip one bit inside the second record's payload.
        let second_start = FRAME_HEADER_BYTES as usize + crate::protocol::encode(&records[0]).len();
        bytes[second_start + FRAME_HEADER_BYTES as usize + 3] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();

        let contents = read_journal(&path).unwrap();
        assert_eq!(contents.records, records[..1]);
        assert!(contents.torn);
        assert_eq!(contents.valid_len, second_start as u64);
    }

    #[test]
    fn absurd_length_header_is_corruption_not_allocation() {
        let path = temp_journal();
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        let contents = read_journal(&path).unwrap();
        assert!(contents.records.is_empty());
        assert!(contents.torn);
    }

    #[test]
    fn non_increasing_seq_ends_the_prefix() {
        let path = temp_journal();
        let mut writer = JournalWriter::open(&path, 0, 1, FaultPlan::none()).unwrap();
        writer
            .append(&Record {
                seq: 5,
                effect: Effect::Select { session: 0 },
            })
            .unwrap();
        writer
            .append(&Record {
                seq: 5,
                effect: Effect::Select { session: 1 },
            })
            .unwrap();
        let contents = read_journal(&path).unwrap();
        assert_eq!(contents.records.len(), 1);
        assert!(contents.torn);
    }

    #[test]
    fn reopening_truncates_the_torn_tail_under_new_appends() {
        let path = temp_journal();
        let records = sample_records(3);
        write_all(&path, &records);
        // Tear the last frame.
        let bytes = raw_bytes(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();

        let contents = read_journal(&path).unwrap();
        assert!(contents.torn);
        assert_eq!(contents.records.len(), 2);

        let mut writer =
            JournalWriter::open(&path, contents.valid_len, 1, FaultPlan::none()).unwrap();
        let next = Record {
            seq: 99,
            effect: Effect::Evict { sessions: vec![1] },
        };
        writer.append(&next).unwrap();

        let reread = read_journal(&path).unwrap();
        assert!(!reread.torn);
        assert_eq!(reread.records.len(), 3);
        assert_eq!(reread.records[2], next);
    }

    #[test]
    fn torn_fault_leaves_a_partial_frame_recovery_drops() {
        let path = temp_journal();
        let plan = FaultPlan::none().on(
            FaultPoint::JournalAppend,
            2,
            FaultAction::Torn { keep_bytes: 5 },
        );
        let mut writer = JournalWriter::open(&path, 0, 1, plan).unwrap();
        let records = sample_records(2);
        writer.append(&records[0]).unwrap();
        let err = writer.append(&records[1]).unwrap_err();
        assert!(crate::fault::is_simulated_crash(&err));

        let contents = read_journal(&path).unwrap();
        assert_eq!(contents.records, records[..1]);
        assert!(contents.torn, "5 stray bytes must register as torn");
    }

    #[test]
    fn truncate_all_resets_to_an_empty_journal() {
        let path = temp_journal();
        let records = sample_records(3);
        let mut writer = JournalWriter::open(&path, 0, 2, FaultPlan::none()).unwrap();
        for record in &records {
            writer.append(record).unwrap();
        }
        writer.truncate_all().unwrap();
        assert_eq!(writer.len_bytes(), 0);
        let contents = read_journal(&path).unwrap();
        assert!(contents.records.is_empty());
        assert!(!contents.torn);

        // And the journal is still appendable afterwards.
        writer
            .append(&Record {
                seq: 1,
                effect: Effect::Select { session: 7 },
            })
            .unwrap();
        writer.sync().unwrap();
        assert_eq!(read_journal(&path).unwrap().records.len(), 1);
    }
}
