//! [`ServeConfig`]: the daemon's one-stop construction surface.
//!
//! The `serve` command grew past ten flags; this type replaces that
//! sprawl with a single validated builder that (a) chains fluent
//! setters, (b) round-trips through JSON — `serve --config FILE` loads
//! one, and a *partial* file is fine: absent fields keep their defaults,
//! unknown fields are rejected by name — and (c) compiles down to the
//! [`ServiceConfig`] the [`Service`](crate::Service) boots from via
//! [`ServeConfig::build`], where every cross-field rule is checked in
//! one place.
//!
//! Transport concerns (`addr`, `transport`, `ready_file`) live here too
//! so one JSON document describes a complete daemon, but they are *not*
//! part of the built [`ServiceConfig`] — the CLI reads them back through
//! the accessor-free public fields.

use crate::clock::Clock;
use crate::durable::DurabilityConfig;
use crate::sched::BudgetMode;
use crate::service::{SelectorChoice, ServiceConfig, DEFAULT_MAX_LINE_BYTES, DEFAULT_SHARDS};
use crowdfusion_core::round::RoundConfig;
use serde::{Deserialize, Error as SerdeError, Serialize, Value};
use std::path::PathBuf;

/// How the daemon accepts clients.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transport {
    /// Line-delimited JSON over TCP (the default).
    Tcp,
    /// Line-delimited JSON over stdin/stdout.
    Stdio,
}

impl Transport {
    /// Parses the CLI/JSON spelling.
    pub fn parse(name: &str) -> Result<Transport, String> {
        match name {
            "tcp" => Ok(Transport::Tcp),
            "stdio" => Ok(Transport::Stdio),
            other => Err(format!("unknown transport {other:?} (tcp or stdio)")),
        }
    }

    /// The CLI/JSON spelling.
    pub fn name(self) -> &'static str {
        match self {
            Transport::Tcp => "tcp",
            Transport::Stdio => "stdio",
        }
    }
}

/// Everything `crowdfusion serve` needs, as one declarative document.
///
/// Construct with [`ServeConfig::new`], refine with the fluent setters,
/// and turn into a bootable [`ServiceConfig`] with [`ServeConfig::build`]
/// — the only place validation happens, so a config deserialised from
/// JSON and one built in code pass through identical checks.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Master seed for per-session RNG streams.
    pub seed: u64,
    /// Default tasks per round.
    pub k: usize,
    /// Default per-session judgment budget.
    pub budget: usize,
    /// Default assumed crowd accuracy.
    pub pc: f64,
    /// Worker-pool width. `None` falls back to `CROWDFUSION_THREADS`,
    /// then 1 — the same sourcing the `refine` command uses.
    pub threads: Option<usize>,
    /// Registry shard (lock-stripe) count; purely a concurrency knob.
    pub shards: usize,
    /// Task selection backend (`greedy`, `greedy-pre`, `random`).
    pub selector: String,
    /// Default fusion method name.
    pub method: String,
    /// TCP bind address.
    pub addr: String,
    /// `tcp` or `stdio`.
    pub transport: String,
    /// When set, the bound address is written here once listening.
    pub ready_file: Option<String>,
    /// Snapshot path confinement directory (see
    /// [`ServiceConfig::snapshot_dir`]).
    pub snapshot_dir: Option<String>,
    /// Crash safety: journal every mutation into this directory.
    pub wal_dir: Option<String>,
    /// Auto-snapshot cadence (effects between snapshots; 0 disables).
    pub snapshot_every: usize,
    /// Fsync the journal every this-many appends (min 1).
    pub sync_every: usize,
    /// Batch journal fsyncs per transport ready-batch (see
    /// [`DurabilityConfig::group_commit`]).
    pub group_commit: bool,
    /// Evict sessions idle longer than this many ms.
    pub session_ttl_ms: Option<u64>,
    /// Close connections silent longer than this many ms.
    pub read_deadline_ms: Option<u64>,
    /// Reject protocol lines longer than this many bytes.
    pub max_line_bytes: usize,
    /// `per-session` (the default) or `global` — see
    /// [`crate::sched::BudgetMode`].
    pub budget_mode: String,
    /// The shared judgment pool for `global` budget mode (must be
    /// positive there; must stay 0 in `per-session` mode).
    pub global_budget: u64,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig::new()
    }
}

impl ServeConfig {
    /// The defaults the bare `serve` command has always used.
    pub fn new() -> ServeConfig {
        ServeConfig {
            seed: 7,
            k: 2,
            budget: 60,
            pc: 0.8,
            threads: None,
            shards: DEFAULT_SHARDS,
            selector: "greedy".to_string(),
            method: crowdfusion_fusion::DEFAULT_METHOD.to_string(),
            addr: "127.0.0.1:7464".to_string(),
            transport: "tcp".to_string(),
            ready_file: None,
            snapshot_dir: None,
            wal_dir: None,
            snapshot_every: 256,
            sync_every: 1,
            group_commit: false,
            session_ttl_ms: None,
            read_deadline_ms: None,
            max_line_bytes: DEFAULT_MAX_LINE_BYTES,
            budget_mode: "per-session".to_string(),
            global_budget: 0,
        }
    }

    /// Sets the master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the default round shape (`k` tasks, `budget` judgments,
    /// crowd accuracy `pc`); validated in [`ServeConfig::build`].
    pub fn round(mut self, k: usize, budget: usize, pc: f64) -> Self {
        self.k = k;
        self.budget = budget;
        self.pc = pc;
        self
    }

    /// Sets the worker-pool width explicitly.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Sets the registry shard count.
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Sets the selector backend by its CLI spelling.
    pub fn selector(mut self, selector: &str) -> Self {
        self.selector = selector.to_string();
        self
    }

    /// Sets the default fusion method.
    pub fn method(mut self, method: &str) -> Self {
        self.method = method.to_string();
        self
    }

    /// Sets the TCP bind address.
    pub fn addr(mut self, addr: &str) -> Self {
        self.addr = addr.to_string();
        self
    }

    /// Turns on crash safety, journalling into `dir`.
    pub fn wal_dir(mut self, dir: &str) -> Self {
        self.wal_dir = Some(dir.to_string());
        self
    }

    /// Turns on transport-batched journal fsync.
    pub fn group_commit(mut self, on: bool) -> Self {
        self.group_commit = on;
        self
    }

    /// Sets the session idle TTL in milliseconds.
    pub fn session_ttl_ms(mut self, ttl: u64) -> Self {
        self.session_ttl_ms = Some(ttl);
        self
    }

    /// Sets the connection read deadline in milliseconds.
    pub fn read_deadline_ms(mut self, deadline: u64) -> Self {
        self.read_deadline_ms = Some(deadline);
        self
    }

    /// Switches to the global budget scheduler with a shared pool of
    /// `budget` judgments.
    pub fn global_budget(mut self, budget: u64) -> Self {
        self.budget_mode = "global".to_string();
        self.global_budget = budget;
        self
    }

    /// Loads a config from a JSON document. Partial documents are fine:
    /// absent fields keep their defaults; unknown fields are errors (a
    /// typo must not silently fall back to a default).
    pub fn from_json(text: &str) -> Result<ServeConfig, String> {
        serde_json::from_str(text).map_err(|e| format!("invalid serve config: {e}"))
    }

    /// Renders the config as pretty JSON (a template for `--config`).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("serve configs serialise infallibly")
    }

    /// The parsed transport.
    pub fn transport(&self) -> Result<Transport, String> {
        Transport::parse(&self.transport)
    }

    /// Validates every field and cross-field rule, producing the
    /// [`ServiceConfig`] the daemon boots from. The transport fields
    /// (`addr`, `transport`, `ready_file`) are validated but not part of
    /// the result — read them off the config directly.
    pub fn build(&self) -> Result<ServiceConfig, String> {
        self.transport()?;
        let selector = SelectorChoice::parse(&self.selector)?;
        let defaults = RoundConfig::new(self.k, self.budget, self.pc).map_err(|e| e.to_string())?;
        let threads = match self.threads {
            Some(0) => return Err("threads must be positive".to_string()),
            Some(threads) => threads,
            None => crowdfusion_core::pool::threads_from_env().unwrap_or(1),
        };
        if self.shards == 0 {
            return Err("shards must be positive".to_string());
        }
        if self.max_line_bytes == 0 {
            return Err("max_line_bytes must be positive".to_string());
        }
        if self.read_deadline_ms == Some(0) {
            return Err("read_deadline_ms must be positive".to_string());
        }
        if self.sync_every == 0 {
            return Err("sync_every must be positive".to_string());
        }
        let budget_mode = BudgetMode::parse(&self.budget_mode)?;
        if budget_mode.is_global() && self.global_budget == 0 {
            return Err("global budget mode needs global_budget >= 1".to_string());
        }
        if !budget_mode.is_global() && self.global_budget != 0 {
            return Err("global_budget requires budget_mode \"global\"".to_string());
        }
        // An unknown method must fail at build time, not at first Open.
        crowdfusion_fusion::StrategyRegistry::standard()
            .build(&self.method)
            .map_err(|e| e.to_string())?;
        let mut config = ServiceConfig::new(self.seed, defaults, threads, selector);
        config.shards = self.shards;
        config.method = self.method.clone();
        config.snapshot_dir = self.snapshot_dir.as_ref().map(PathBuf::from);
        if let Some(dir) = &self.wal_dir {
            let mut durability = DurabilityConfig::new(dir);
            durability.snapshot_every = self.snapshot_every;
            durability.sync_every = self.sync_every;
            durability.group_commit = self.group_commit;
            config.durability = Some(durability);
        } else if self.group_commit {
            return Err("group_commit requires wal_dir (nothing to journal)".to_string());
        }
        config.session_ttl_ms = self.session_ttl_ms;
        config.read_deadline_ms = self.read_deadline_ms;
        config.max_line_bytes = self.max_line_bytes;
        config.budget_mode = budget_mode;
        config.global_budget = self.global_budget;
        config.clock = Clock::system();
        Ok(config)
    }
}

impl Serialize for ServeConfig {
    fn to_value(&self) -> Value {
        fn opt<T: Serialize>(v: &Option<T>) -> Value {
            v.as_ref().map_or(Value::Null, Serialize::to_value)
        }
        Value::Map(vec![
            ("seed".to_string(), self.seed.to_value()),
            ("k".to_string(), self.k.to_value()),
            ("budget".to_string(), self.budget.to_value()),
            ("pc".to_string(), self.pc.to_value()),
            ("threads".to_string(), opt(&self.threads)),
            ("shards".to_string(), self.shards.to_value()),
            ("selector".to_string(), self.selector.to_value()),
            ("method".to_string(), self.method.to_value()),
            ("addr".to_string(), self.addr.to_value()),
            ("transport".to_string(), self.transport.to_value()),
            ("ready_file".to_string(), opt(&self.ready_file)),
            ("snapshot_dir".to_string(), opt(&self.snapshot_dir)),
            ("wal_dir".to_string(), opt(&self.wal_dir)),
            ("snapshot_every".to_string(), self.snapshot_every.to_value()),
            ("sync_every".to_string(), self.sync_every.to_value()),
            ("group_commit".to_string(), self.group_commit.to_value()),
            ("session_ttl_ms".to_string(), opt(&self.session_ttl_ms)),
            ("read_deadline_ms".to_string(), opt(&self.read_deadline_ms)),
            ("max_line_bytes".to_string(), self.max_line_bytes.to_value()),
            ("budget_mode".to_string(), self.budget_mode.to_value()),
            ("global_budget".to_string(), self.global_budget.to_value()),
        ])
    }
}

impl Deserialize for ServeConfig {
    // Hand-rolled so partial documents merge over the defaults — the
    // derive would demand every field.
    fn from_value(v: &Value) -> Result<ServeConfig, SerdeError> {
        let map = v
            .as_map()
            .ok_or_else(|| SerdeError::custom(format!("expected an object, found {}", v.kind())))?;
        let mut config = ServeConfig::new();
        for (key, value) in map {
            match key.as_str() {
                "seed" => config.seed = Deserialize::from_value(value)?,
                "k" => config.k = Deserialize::from_value(value)?,
                "budget" => config.budget = Deserialize::from_value(value)?,
                "pc" => config.pc = Deserialize::from_value(value)?,
                "threads" => config.threads = Deserialize::from_value(value)?,
                "shards" => config.shards = Deserialize::from_value(value)?,
                "selector" => config.selector = Deserialize::from_value(value)?,
                "method" => config.method = Deserialize::from_value(value)?,
                "addr" => config.addr = Deserialize::from_value(value)?,
                "transport" => config.transport = Deserialize::from_value(value)?,
                "ready_file" => config.ready_file = Deserialize::from_value(value)?,
                "snapshot_dir" => config.snapshot_dir = Deserialize::from_value(value)?,
                "wal_dir" => config.wal_dir = Deserialize::from_value(value)?,
                "snapshot_every" => config.snapshot_every = Deserialize::from_value(value)?,
                "sync_every" => config.sync_every = Deserialize::from_value(value)?,
                "group_commit" => config.group_commit = Deserialize::from_value(value)?,
                "session_ttl_ms" => config.session_ttl_ms = Deserialize::from_value(value)?,
                "read_deadline_ms" => config.read_deadline_ms = Deserialize::from_value(value)?,
                "max_line_bytes" => config.max_line_bytes = Deserialize::from_value(value)?,
                "budget_mode" => config.budget_mode = Deserialize::from_value(value)?,
                "global_budget" => config.global_budget = Deserialize::from_value(value)?,
                other => {
                    return Err(SerdeError::custom(format!(
                        "unknown serve config field {other:?}"
                    )))
                }
            }
        }
        Ok(config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_build_and_round_trip() {
        let config = ServeConfig::new();
        let built = config.build().unwrap();
        assert_eq!(built.seed, 7);
        assert_eq!(built.shards, DEFAULT_SHARDS);
        assert_eq!(built.max_line_bytes, DEFAULT_MAX_LINE_BYTES);
        assert!(built.durability.is_none());
        let back = ServeConfig::from_json(&config.to_json()).unwrap();
        assert_eq!(back, config);
    }

    #[test]
    fn builder_setters_flow_into_the_service_config() {
        let config = ServeConfig::new()
            .seed(42)
            .round(3, 30, 0.9)
            .threads(4)
            .shards(2)
            .selector("random")
            .wal_dir("/tmp/wal")
            .group_commit(true)
            .session_ttl_ms(5_000)
            .read_deadline_ms(250);
        let built = config.build().unwrap();
        assert_eq!(built.seed, 42);
        assert_eq!(built.threads, 4);
        assert_eq!(built.shards, 2);
        assert_eq!(built.session_ttl_ms, Some(5_000));
        assert_eq!(built.read_deadline_ms, Some(250));
        let durability = built.durability.unwrap();
        assert!(durability.group_commit);
        assert_eq!(durability.dir, std::path::Path::new("/tmp/wal"));
    }

    #[test]
    fn partial_json_merges_over_defaults_and_typos_are_rejected() {
        let config = ServeConfig::from_json(r#"{"seed": 11, "shards": 2}"#).unwrap();
        assert_eq!(config.seed, 11);
        assert_eq!(config.shards, 2);
        assert_eq!(config.budget, 60, "absent fields keep their defaults");
        let err = ServeConfig::from_json(r#"{"shard_count": 2}"#).unwrap_err();
        assert!(err.contains("shard_count"), "got {err}");
    }

    #[test]
    fn build_rejects_invalid_configs() {
        for config in [
            ServeConfig::new().round(0, 60, 0.8),
            ServeConfig::new().round(2, 60, 0.2),
            ServeConfig::new().threads(0),
            ServeConfig::new().shards(0),
            ServeConfig::new().selector("oracle"),
            ServeConfig::new().method("lda"),
            ServeConfig::new().read_deadline_ms(0),
            ServeConfig::new().group_commit(true),
            ServeConfig::new().global_budget(0),
        ] {
            assert!(config.build().is_err(), "must reject {config:?}");
        }
        // The message names the offending knob, not just "invalid".
        let err = ServeConfig::new().group_commit(true).build().unwrap_err();
        assert!(err.contains("wal_dir"), "got {err:?}");
        let err = ServeConfig::new().method("lda").build().unwrap_err();
        assert!(err.contains("lda"), "got {err:?}");
        let mut bad_transport = ServeConfig::new();
        bad_transport.transport = "carrier-pigeon".to_string();
        assert!(bad_transport.build().is_err());
    }

    #[test]
    fn budget_mode_round_trips_and_cross_validates() {
        let config = ServeConfig::new().global_budget(120);
        let built = config.build().unwrap();
        assert!(built.budget_mode.is_global());
        assert_eq!(built.global_budget, 120);
        let back = ServeConfig::from_json(&config.to_json()).unwrap();
        assert_eq!(back, config);

        // A pool without the mode is a silent no-op waiting to happen.
        let mut orphan_pool = ServeConfig::new();
        orphan_pool.global_budget = 50;
        let err = orphan_pool.build().unwrap_err();
        assert!(err.contains("budget_mode"), "got {err:?}");

        let mut bad_mode = ServeConfig::new();
        bad_mode.budget_mode = "shared".to_string();
        assert!(bad_mode.build().is_err());
    }
}
