//! `crowdfusion-serve` — the long-lived, multi-tenant refinement service.
//!
//! The paper's CrowdFusion loop (select tasks → publish to the crowd →
//! absorb answers → update the posterior) is inherently an *online*
//! protocol; this crate puts a serving layer on top of the batched
//! substrate PR 4 built. A daemon manages many concurrent **sessions**
//! (one per entity), each a resumable
//! [`crowdfusion_core::session::SessionState`] holding its posterior, open
//! task set and budget ledger, and speaks a line-delimited JSON protocol
//! over TCP and stdio:
//!
//! | verb | effect |
//! |------|--------|
//! | `Open` | register entities (wire [`crowdfusion_core::session::EntitySpec`]s); priors built in parallel on the worker pool |
//! | `Select` | the next task batch under the session budget (idempotent while a round is open) |
//! | `Absorb` | ingest crowd answers incrementally and out of order; duplicates and late answers rejected |
//! | `Snapshot` / `Restore` | persist / reload every session (posterior, RNG state, partial rounds) |
//! | `Status` / `Metrics` / `Trace` | per-session and aggregate bookkeeping |
//! | `Shutdown` | stop the daemon |
//!
//! **Determinism contract.** A session fed the same seeded crowd answers
//! in *any* arrival order produces a trace bit-identical to the offline
//! [`crowdfusion_core::system::Experiment::run_sharded`] — property-tested
//! in `tests/determinism.rs` across thread counts, arrival permutations,
//! duplicated deliveries and snapshot/restore cut points.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod protocol;
pub mod server;
pub mod service;
pub mod snapshot;

pub use protocol::{Request, Response, WireAnswer};
pub use server::{serve_stdio, serve_tcp, Client};
pub use service::{SelectorChoice, Service, ServiceConfig};
