//! `crowdfusion-serve` — the long-lived, multi-tenant refinement service.
//!
//! The paper's CrowdFusion loop (select tasks → publish to the crowd →
//! absorb answers → update the posterior) is inherently an *online*
//! protocol; this crate puts a serving layer on top of the batched
//! substrate PR 4 built. A daemon manages many concurrent **sessions**
//! (one per entity), each a resumable
//! [`crowdfusion_core::session::SessionState`] holding its posterior, open
//! task set and budget ledger, and speaks a line-delimited JSON protocol
//! over TCP and stdio:
//!
//! | verb | effect |
//! |------|--------|
//! | `Open` | register entities (wire [`crowdfusion_core::session::EntitySpec`]s); priors built in parallel on the worker pool |
//! | `Select` | the next task batch under the session budget (idempotent while a round is open) |
//! | `Schedule` / `BudgetStatus` | global-budget mode: admit the best marginal-gain session across *all* sessions; inspect the shared ledger ([`sched`]) |
//! | `Absorb` | ingest crowd answers incrementally and out of order; duplicates and late answers rejected |
//! | `Snapshot` / `Restore` | persist / reload every session (posterior, RNG state, partial rounds) |
//! | `Status` / `Metrics` / `Trace` | per-session and aggregate bookkeeping |
//! | `Shutdown` | stop the daemon |
//!
//! **Determinism contract.** A session fed the same seeded crowd answers
//! in *any* arrival order produces a trace bit-identical to the offline
//! [`crowdfusion_core::system::Experiment::run_sharded`] — property-tested
//! in `tests/determinism.rs` across thread counts, arrival permutations,
//! duplicated deliveries and snapshot/restore cut points.
//!
//! **Crash safety.** With a durability directory configured, every
//! mutating effect is journalled (length+CRC-framed, fsync-batched —
//! [`journal`]) before it is applied, and the registry auto-snapshots
//! periodically with journal truncation ([`durable`]). A killed daemon
//! restarts from `snapshot + journal replay` with traces bit-identical
//! to an uninterrupted run; torn tail records are detected and dropped.
//! The [`fault`] module injects crashes, torn writes and connection
//! drops on a deterministic schedule — `tests/chaos.rs` asserts exact
//! recovery at every kill point. Ingest is hardened for at-least-once
//! crowds: `Open` carries an idempotency token, server-side `Absorb`
//! routes through `crowdfusion_crowd::dedup_answers`, sessions expire on
//! a logical [`clock`], and the protocol reader bounds line length.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod clock;
pub mod config;
pub mod durable;
pub mod fault;
pub mod journal;
pub mod protocol;
pub mod sched;
pub mod server;
pub mod service;
pub mod snapshot;

pub use clock::Clock;
pub use config::{ServeConfig, Transport};
pub use durable::{DurabilityConfig, DurableSnapshot};
pub use fault::{FaultAction, FaultPlan, FaultPoint, SimulatedCrash};
pub use journal::Effect;
pub use protocol::{Framing, Request, Response, WireAnswer, WIRE_VERSION_MAX, WIRE_VERSION_MIN};
pub use sched::{BudgetMode, SchedSnapshot, SchedState};
pub use server::{
    serve_stdio, serve_tcp, Absorbed, Client, OpenOptions, RetryPolicy, Selected, Session,
};
pub use service::{SelectorChoice, Service, ServiceConfig, DEFAULT_SHARDS};
