//! Durability: auto-snapshot + journal = crash-safe daemon state.
//!
//! A durable daemon owns one directory holding two files:
//!
//! * `snapshot.json` — a [`DurableSnapshot`]: the full registry snapshot,
//!   the idempotency ledger of completed `Open`s, and `applied_seq`, the
//!   last journal sequence the snapshot covers.
//! * `wal.log` — the framed effect journal (see [`crate::journal`]) of
//!   everything applied after that snapshot.
//!
//! **Invariant:** on-disk state always reconstructs in-memory state.
//! Every mutation is journalled before it is applied; snapshots are
//! written to a `.tmp` sibling, fsynced, renamed over the live file, and
//! only *then* is the journal truncated. Each crash window therefore
//! recovers:
//!
//! * before the journal append — the effect never happened;
//! * between append and apply — replay applies it (a journalled effect
//!   that *failed* to apply fails identically on replay: application is
//!   deterministic, so journalling attempted mutations is consistent);
//! * during the snapshot tmp write — garbage `.tmp`, previous
//!   snapshot + full journal still present;
//! * between rename and journal truncate — the new snapshot's
//!   `applied_seq` makes replay skip every journal record it covers.
//!
//! Sequence numbers are monotone across the daemon's whole life (they do
//! not reset at truncation), so a stale journal can never replay into a
//! newer snapshot.

use crate::fault::{FaultAction, FaultPlan, FaultPoint, SimulatedCrash};
use crate::journal::{read_journal, JournalWriter, Record};
use crate::sched::SchedSnapshot;
use crowdfusion_core::session::{OpenedSession, RegistrySnapshot};
use serde::{Deserialize, Error as SerdeError, Serialize, Value};
use std::fs::File;
use std::io;
use std::path::{Path, PathBuf};

/// The snapshot file inside a durability directory.
pub const SNAPSHOT_FILE: &str = "snapshot.json";
/// The journal file inside a durability directory.
pub const JOURNAL_FILE: &str = "wal.log";

/// Tuning for the durability layer.
#[derive(Debug, Clone)]
pub struct DurabilityConfig {
    /// The directory owning `snapshot.json` and `wal.log` (created if
    /// absent).
    pub dir: PathBuf,
    /// Auto-snapshot (and truncate the journal) after this many applied
    /// effects. `0` disables auto-snapshots: the journal grows until
    /// shutdown's final snapshot.
    pub snapshot_every: usize,
    /// Fsync the journal every this-many appends (min 1). Ignored when
    /// `group_commit` is on.
    pub sync_every: usize,
    /// Group commit: appends never fsync inline; the transport calls
    /// `Service::flush_wal` once per ready-batch, so one fsync covers
    /// every shard's pending appends. Journal-before-apply ordering is
    /// untouched — the record is *written* before the effect applies;
    /// only its durability is batched. Snapshots still sync the journal
    /// first, so the recovery invariant holds at every cadence point.
    pub group_commit: bool,
}

impl DurabilityConfig {
    /// Defaults: snapshot every 256 effects, fsync every append, no
    /// group commit.
    pub fn new(dir: impl Into<PathBuf>) -> DurabilityConfig {
        DurabilityConfig {
            dir: dir.into(),
            snapshot_every: 256,
            sync_every: 1,
            group_commit: false,
        }
    }
}

/// One completed `Open` in the idempotency ledger: a retry carrying
/// `request` gets `sessions` back instead of opening duplicates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompletedOpen {
    /// The client's idempotency token.
    pub request: u64,
    /// The original `Opened` payload.
    pub sessions: Vec<OpenedSession>,
}

/// Everything a restarted daemon needs, as one JSON document.
#[derive(Debug, Clone, PartialEq)]
pub struct DurableSnapshot {
    /// Last journal sequence this snapshot covers; replay skips records
    /// at or below it.
    pub applied_seq: u64,
    /// The whole registry (posteriors, ledgers, RNG states, open rounds).
    pub registry: RegistrySnapshot,
    /// The idempotency ledger, ascending by request id.
    pub opens: Vec<CompletedOpen>,
    /// Global-scheduler state (ledger + admission marks), present only
    /// when the daemon runs `--budget-mode global`.
    pub sched: Option<SchedSnapshot>,
}

// Hand-rolled: the `sched` field is *omitted* (not serialised as null)
// when absent, so per-session daemons write snapshots byte-identical to
// the pre-scheduler format — and can read snapshots from either era.
impl Serialize for DurableSnapshot {
    fn to_value(&self) -> Value {
        let mut fields = vec![
            ("applied_seq".to_string(), self.applied_seq.to_value()),
            ("registry".to_string(), self.registry.to_value()),
            ("opens".to_string(), self.opens.to_value()),
        ];
        if let Some(sched) = &self.sched {
            fields.push(("sched".to_string(), sched.to_value()));
        }
        Value::Map(fields)
    }
}

impl Deserialize for DurableSnapshot {
    fn from_value(v: &Value) -> Result<DurableSnapshot, SerdeError> {
        if v.as_map().is_none() {
            return Err(SerdeError::custom(format!(
                "expected an object, found {}",
                v.kind()
            )));
        }
        let field = |name: &str| v.get_field(name).unwrap_or(&Value::Null);
        Ok(DurableSnapshot {
            applied_seq: Deserialize::from_value(field("applied_seq"))?,
            registry: Deserialize::from_value(field("registry"))?,
            opens: Deserialize::from_value(field("opens"))?,
            sched: match v.get_field("sched") {
                None | Some(Value::Null) => None,
                Some(value) => Some(Deserialize::from_value(value)?),
            },
        })
    }
}

/// What [`recover`] found on disk.
#[derive(Debug)]
pub struct Recovery {
    /// The durable snapshot, if one was ever completed.
    pub snapshot: Option<DurableSnapshot>,
    /// Journal records to replay (already filtered to
    /// `seq > snapshot.applied_seq`).
    pub replay: Vec<Record>,
    /// Whether the journal carried a torn tail (dropped).
    pub torn: bool,
    /// Byte length of the journal's valid prefix.
    pub valid_len: u64,
    /// Highest sequence represented on disk (snapshot or journal); fresh
    /// appends continue above it.
    pub last_seq: u64,
}

/// Reads the durable state out of `dir` (creating the directory when
/// absent — first boot). A corrupt `snapshot.json` is a hard error:
/// snapshots only ever land complete (tmp + rename), so corruption there
/// means real damage that silently discarding would turn into data loss.
/// A torn journal tail is expected damage and is dropped.
pub fn recover(dir: &Path) -> io::Result<Recovery> {
    std::fs::create_dir_all(dir)?;
    let snapshot = match std::fs::read_to_string(dir.join(SNAPSHOT_FILE)) {
        Ok(text) => Some(
            crate::protocol::decode::<DurableSnapshot>(&text).map_err(|e| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("corrupt durable snapshot: {e}"),
                )
            })?,
        ),
        Err(err) if err.kind() == io::ErrorKind::NotFound => None,
        Err(err) => return Err(err),
    };
    let applied_seq = snapshot.as_ref().map_or(0, |s| s.applied_seq);
    let contents = read_journal(&dir.join(JOURNAL_FILE))?;
    let replay: Vec<Record> = contents
        .records
        .into_iter()
        .filter(|r| r.seq > applied_seq)
        .collect();
    let last_seq = replay.last().map_or(applied_seq, |r| r.seq);
    Ok(Recovery {
        snapshot,
        replay,
        torn: contents.torn,
        valid_len: contents.valid_len,
        last_seq,
    })
}

/// The live durability engine: owns the journal writer and the snapshot
/// cadence. The service journals through it before every apply and hands
/// it fresh [`DurableSnapshot`]s when one is due.
pub struct Durability {
    config: DurabilityConfig,
    writer: JournalWriter,
    next_seq: u64,
    since_snapshot: usize,
    faults: FaultPlan,
}

impl Durability {
    /// Opens the journal for appending after [`recover`], truncating any
    /// torn tail so fresh frames land on a record boundary.
    pub fn open(
        config: DurabilityConfig,
        faults: FaultPlan,
        recovery: &Recovery,
    ) -> io::Result<Durability> {
        // Group commit defers every fsync to the explicit sync() the
        // transport drives once per ready-batch.
        let sync_every = if config.group_commit {
            usize::MAX
        } else {
            config.sync_every
        };
        let writer = JournalWriter::open(
            &config.dir.join(JOURNAL_FILE),
            recovery.valid_len,
            sync_every,
            faults.clone(),
        )?;
        Ok(Durability {
            config,
            writer,
            next_seq: recovery.last_seq + 1,
            since_snapshot: 0,
            faults,
        })
    }

    /// Journals one effect, assigning it the next sequence. Once this
    /// returns (and the batched fsync lands) the effect survives a crash.
    pub fn journal(&mut self, effect: crate::journal::Effect) -> io::Result<u64> {
        let seq = self.next_seq;
        self.writer.append(&Record { seq, effect })?;
        self.next_seq = seq + 1;
        Ok(seq)
    }

    /// The last sequence journalled (what a snapshot taken now covers).
    pub fn last_seq(&self) -> u64 {
        self.next_seq - 1
    }

    /// Records that a journalled effect was applied; returns whether the
    /// auto-snapshot cadence says a snapshot is now due.
    pub fn effect_applied(&mut self) -> bool {
        self.since_snapshot += 1;
        self.config.snapshot_every > 0 && self.since_snapshot >= self.config.snapshot_every
    }

    /// Writes `snapshot` durably (tmp → fsync → rename) and truncates the
    /// journal it supersedes. On any error the previous snapshot and the
    /// journal are still intact — recovery works from them.
    pub fn snapshot_now(&mut self, snapshot: &DurableSnapshot) -> io::Result<()> {
        // The journal must be durable before the snapshot claims to cover
        // it (a crash mid-snapshot falls back to snapshot' + journal).
        self.writer.sync()?;
        let live = self.config.dir.join(SNAPSHOT_FILE);
        let tmp = live.with_extension("tmp");
        let text = crate::protocol::encode(snapshot);
        match self.faults.check(FaultPoint::SnapshotWrite) {
            None => std::fs::write(&tmp, &text)?,
            Some(FaultAction::Crash) => {
                return Err(SimulatedCrash {
                    point: FaultPoint::SnapshotWrite,
                }
                .into())
            }
            Some(FaultAction::Torn { keep_bytes }) => {
                let keep = keep_bytes.min(text.len());
                std::fs::write(&tmp, &text.as_bytes()[..keep])?;
                return Err(SimulatedCrash {
                    point: FaultPoint::SnapshotWrite,
                }
                .into());
            }
            Some(other) => panic!("snapshot write cannot honour {other:?}"),
        }
        File::open(&tmp)?.sync_all()?;
        self.faults.crash_if_scheduled(FaultPoint::SnapshotRename)?;
        std::fs::rename(&tmp, &live)?;
        self.writer.truncate_all()?;
        self.since_snapshot = 0;
        Ok(())
    }

    /// Forces batched journal appends to disk.
    pub fn sync(&mut self) -> io::Result<()> {
        self.writer.sync()
    }

    /// The directory this engine persists into.
    pub fn dir(&self) -> &Path {
        &self.config.dir
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::Effect;
    use crowdfusion_core::pool::Pool;
    use crowdfusion_core::round::RoundConfig;
    use crowdfusion_core::session::{EntitySpec, SessionRegistry};
    use std::sync::atomic::{AtomicU64, Ordering};

    static NEXT_DIR: AtomicU64 = AtomicU64::new(0);

    fn temp_dir() -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "crowdfusion-durable-{}-{}",
            std::process::id(),
            NEXT_DIR.fetch_add(1, Ordering::SeqCst)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_snapshot(applied_seq: u64) -> DurableSnapshot {
        let mut reg = SessionRegistry::new(3, RoundConfig::new(2, 6, 0.8).unwrap(), Pool::serial());
        reg.open_batch(
            vec![EntitySpec::simple("b", vec![0.4, 0.6], vec![true, false])],
            None,
        )
        .unwrap();
        DurableSnapshot {
            applied_seq,
            registry: reg.snapshot(),
            opens: vec![CompletedOpen {
                request: 41,
                sessions: vec![],
            }],
            sched: None,
        }
    }

    fn effect(n: u64) -> Effect {
        Effect::Select { session: n }
    }

    #[test]
    fn fresh_directory_recovers_to_nothing() {
        let dir = temp_dir().join("deeper"); // also exercises create_dir_all
        let recovery = recover(&dir).unwrap();
        assert!(recovery.snapshot.is_none());
        assert!(recovery.replay.is_empty());
        assert!(!recovery.torn);
        assert_eq!(recovery.last_seq, 0);
    }

    #[test]
    fn journalled_effects_come_back_in_order() {
        let dir = temp_dir();
        let recovery = recover(&dir).unwrap();
        let mut durable =
            Durability::open(DurabilityConfig::new(&dir), FaultPlan::none(), &recovery).unwrap();
        for n in 0..5 {
            assert_eq!(durable.journal(effect(n)).unwrap(), n + 1);
        }
        assert_eq!(durable.last_seq(), 5);

        let recovered = recover(&dir).unwrap();
        assert_eq!(recovered.replay.len(), 5);
        assert_eq!(recovered.last_seq, 5);
        assert_eq!(recovered.replay[2].effect, effect(2));
    }

    #[test]
    fn snapshot_truncates_journal_and_replay_resumes_above_it() {
        let dir = temp_dir();
        let recovery = recover(&dir).unwrap();
        let mut durable =
            Durability::open(DurabilityConfig::new(&dir), FaultPlan::none(), &recovery).unwrap();
        for n in 0..3 {
            durable.journal(effect(n)).unwrap();
        }
        durable
            .snapshot_now(&sample_snapshot(durable.last_seq()))
            .unwrap();
        durable.journal(effect(99)).unwrap();

        let recovered = recover(&dir).unwrap();
        let snapshot = recovered.snapshot.as_ref().expect("snapshot must exist");
        assert_eq!(snapshot.applied_seq, 3);
        assert_eq!(snapshot.opens[0].request, 41);
        // Only the post-snapshot record replays.
        assert_eq!(recovered.replay.len(), 1);
        assert_eq!(recovered.replay[0].seq, 4);
        assert_eq!(recovered.last_seq, 4);

        // And appends continue the global sequence after a reopen.
        let mut durable =
            Durability::open(DurabilityConfig::new(&dir), FaultPlan::none(), &recovered).unwrap();
        assert_eq!(durable.journal(effect(1)).unwrap(), 5);
    }

    #[test]
    fn crash_between_rename_and_truncate_skips_covered_records() {
        let dir = temp_dir();
        let recovery = recover(&dir).unwrap();
        let plan = FaultPlan::none().on(FaultPoint::JournalTruncate, 1, FaultAction::Crash);
        let mut durable = Durability::open(DurabilityConfig::new(&dir), plan, &recovery).unwrap();
        for n in 0..4 {
            durable.journal(effect(n)).unwrap();
        }
        let err = durable
            .snapshot_now(&sample_snapshot(durable.last_seq()))
            .unwrap_err();
        assert!(crate::fault::is_simulated_crash(&err));
        drop(durable); // process death

        // Disk now holds the NEW snapshot and the UN-truncated journal.
        let recovered = recover(&dir).unwrap();
        assert_eq!(recovered.snapshot.as_ref().unwrap().applied_seq, 4);
        assert!(
            recovered.replay.is_empty(),
            "records covered by the snapshot must not replay"
        );
        assert_eq!(recovered.last_seq, 4);
    }

    #[test]
    fn torn_snapshot_write_preserves_the_previous_snapshot() {
        let dir = temp_dir();
        let recovery = recover(&dir).unwrap();
        let mut durable =
            Durability::open(DurabilityConfig::new(&dir), FaultPlan::none(), &recovery).unwrap();
        durable.journal(effect(0)).unwrap();
        let first = sample_snapshot(durable.last_seq());
        durable.snapshot_now(&first).unwrap();
        drop(durable);

        // Second incarnation tears its snapshot write mid-file.
        let recovery = recover(&dir).unwrap();
        let plan = FaultPlan::none().on(
            FaultPoint::SnapshotWrite,
            1,
            FaultAction::Torn { keep_bytes: 10 },
        );
        let mut durable = Durability::open(DurabilityConfig::new(&dir), plan, &recovery).unwrap();
        durable.journal(effect(1)).unwrap();
        let err = durable
            .snapshot_now(&sample_snapshot(durable.last_seq()))
            .unwrap_err();
        assert!(crate::fault::is_simulated_crash(&err));
        drop(durable);

        // The torn tmp exists, but recovery reads the previous snapshot
        // and replays the journalled effect on top.
        assert!(dir.join("snapshot.tmp").exists());
        let recovered = recover(&dir).unwrap();
        assert_eq!(recovered.snapshot.unwrap(), first);
        assert_eq!(recovered.replay.len(), 1);
        assert_eq!(recovered.replay[0].seq, 2);
    }

    #[test]
    fn crash_before_rename_preserves_the_previous_snapshot() {
        let dir = temp_dir();
        let recovery = recover(&dir).unwrap();
        let mut durable =
            Durability::open(DurabilityConfig::new(&dir), FaultPlan::none(), &recovery).unwrap();
        let first = sample_snapshot(0);
        durable.snapshot_now(&first).unwrap();
        drop(durable);

        let recovery = recover(&dir).unwrap();
        let plan = FaultPlan::none().on(FaultPoint::SnapshotRename, 1, FaultAction::Crash);
        let mut durable = Durability::open(DurabilityConfig::new(&dir), plan, &recovery).unwrap();
        durable.journal(effect(7)).unwrap();
        let err = durable
            .snapshot_now(&sample_snapshot(durable.last_seq()))
            .unwrap_err();
        assert!(crate::fault::is_simulated_crash(&err));
        drop(durable);

        let recovered = recover(&dir).unwrap();
        assert_eq!(recovered.snapshot.unwrap(), first);
        assert_eq!(
            recovered.replay.len(),
            1,
            "journal survives a failed snapshot"
        );
    }

    #[test]
    fn sched_state_is_omitted_when_absent_and_round_trips_when_present() {
        // Per-session daemons must keep writing the pre-scheduler format:
        // no "sched" key at all, not a null.
        let plain = sample_snapshot(2);
        let text = crate::protocol::encode(&plain);
        assert!(!text.contains("sched"), "got {text}");
        let back: DurableSnapshot = crate::protocol::decode(&text).unwrap();
        assert_eq!(back, plain);

        // Global daemons carry the ledger and admission marks.
        let mut sched = crate::sched::SchedState::new(50);
        sched.ledger.charge(17).unwrap();
        sched.mark(Some(9), 1);
        let global = DurableSnapshot {
            sched: Some(sched.snapshot()),
            ..plain.clone()
        };
        let text = crate::protocol::encode(&global);
        assert!(text.contains("sched"));
        let back: DurableSnapshot = crate::protocol::decode(&text).unwrap();
        assert_eq!(back, global);
        let revived = back.sched.unwrap();
        assert_eq!(revived.ledger.spent, 17);
        assert_eq!(revived.scheduled.len(), 1);

        // And an explicit null (a hand-edited or future-era file) reads
        // as absent rather than erroring.
        let nulled = text.replace(
            &crate::protocol::encode(&global.sched.clone().unwrap()),
            "null",
        );
        let back: DurableSnapshot = crate::protocol::decode(&nulled).unwrap();
        assert!(back.sched.is_none());
    }

    #[test]
    fn corrupt_snapshot_is_a_hard_error() {
        let dir = temp_dir();
        std::fs::write(dir.join(SNAPSHOT_FILE), "{broken").unwrap();
        let err = recover(&dir).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}
