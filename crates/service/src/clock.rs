//! Logical time for the serving layer.
//!
//! Everything below the server edge — TTL eviction, deadline bookkeeping,
//! recovery — consumes time as an opaque millisecond [`Tick`] handed in by
//! a [`Clock`], never by reading the wall clock itself. That keeps the
//! determinism story intact (`crowdfusion-analyze`'s `wall-clock` rule
//! stays clean everywhere except the two annotated lines in this module)
//! and makes every time-driven behaviour unit-testable: a [`Clock::manual`]
//! clock only moves when a test advances it.
//!
//! Eviction driven by a [`Clock::system`] clock is inherently edge
//! nondeterminism; what recovery must (and does) preserve is not *when* a
//! session was evicted but *that* it was — the service journals an explicit
//! `Evict` effect at sweep time, so replay never consults a clock.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A millisecond timestamp on a clock's own axis. Ticks from different
/// clocks are not comparable; only differences on one clock mean anything.
pub type Tick = u64;

/// A monotonic millisecond clock: either the process wall clock (server
/// edge) or a manually advanced counter (tests, deterministic harnesses).
#[derive(Debug, Clone)]
pub enum Clock {
    /// Test clock: reads return the counter, which only [`Clock::advance`]
    /// moves. Clones share the counter.
    Manual(Arc<AtomicU64>),
    /// Real time, measured from the clock's construction instant.
    // analyze: allow(wall-clock) — the one sanctioned wall-clock source;
    // everything downstream consumes opaque ticks.
    System(std::time::Instant),
}

impl Clock {
    /// A manual clock starting at tick 0.
    pub fn manual() -> Clock {
        Clock::Manual(Arc::new(AtomicU64::new(0)))
    }

    /// The process wall clock (use only at the server edge).
    pub fn system() -> Clock {
        // analyze: allow(wall-clock) — see the variant's annotation.
        Clock::System(std::time::Instant::now())
    }

    /// Current tick in milliseconds since the clock's origin.
    pub fn now_ms(&self) -> Tick {
        match self {
            Clock::Manual(counter) => counter.load(Ordering::SeqCst),
            Clock::System(origin) => origin.elapsed().as_millis() as u64,
        }
    }

    /// Advances a manual clock by `ms`. No-op on a system clock (real time
    /// cannot be steered).
    pub fn advance(&self, ms: u64) {
        if let Clock::Manual(counter) = self {
            counter.fetch_add(ms, Ordering::SeqCst);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_moves_only_when_advanced() {
        let clock = Clock::manual();
        assert_eq!(clock.now_ms(), 0);
        clock.advance(250);
        assert_eq!(clock.now_ms(), 250);
        // Clones share the counter: advancing one moves the other.
        let other = clock.clone();
        other.advance(50);
        assert_eq!(clock.now_ms(), 300);
    }

    #[test]
    fn system_clock_is_monotonic_and_unsteerable() {
        let clock = Clock::system();
        let a = clock.now_ms();
        clock.advance(1_000_000); // must be ignored
        let b = clock.now_ms();
        assert!(b < 1_000_000, "advance() must not move a system clock");
        assert!(b >= a);
    }
}
