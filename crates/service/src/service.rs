//! The daemon state: a [`SessionRegistry`] plus its durability engine
//! behind one mutex, one selector, and the journalled request dispatcher.
//!
//! **Dispatch protocol** (the write path, when durability is on):
//!
//! 1. pre-validate — errors here are rejected without a journal entry;
//! 2. journal the [`Effect`] (the record is durable before anything
//!    mutates);
//! 3. apply the effect to in-memory state;
//! 4. count it against the auto-snapshot cadence, snapshotting + journal-
//!    truncating when due.
//!
//! A crash between (2) and (3) is repaired by replay on restart; a
//! journalled effect whose *apply* fails (e.g. an `Absorb` naming an
//! unknown task id) fails identically when replayed, so attempted
//! mutations are safe to journal. Reads (`Status`, `Metrics`, `Trace`,
//! the client-directed `Snapshot` export) and idempotent re-reads
//! (`Select` on an already-open round) skip the journal entirely.
//!
//! At-least-once ingest: `Open` accepts an idempotency token — retried
//! tokens return the recorded `Opened` payload from a ledger that
//! persists in the durable snapshot; `Select` is idempotent while a
//! round is open; `Absorb` routes through
//! [`crowdfusion_crowd::dedup_answers`] and the session's own
//! first-answer-wins ingestion, so redelivered batches collapse to one.
//! Sessions idle past the configured TTL are evicted by a sweep that
//! journals an explicit [`Effect::Evict`] — replay never consults the
//! clock.

use crate::clock::{Clock, Tick};
use crate::durable::{
    recover, CompletedOpen, Durability, DurabilityConfig, DurableSnapshot, Recovery,
};
use crate::fault::{as_simulated_crash, FaultPlan, FaultPoint, SimulatedCrash};
use crate::journal::Effect;
use crate::protocol::{Request, Response};
use crate::snapshot;
use crowdfusion_core::pool::Pool;
use crowdfusion_core::round::RoundConfig;
use crowdfusion_core::selection::{GreedySelector, RandomSelector, TaskSelector};
use crowdfusion_core::session::{AbsorbReport, OpenedSession, SelectOutcome, SessionRegistry};
use crowdfusion_core::CoreError;
use crowdfusion_crowd::{dedup_answers, Answer, TaskId, WorkerId};
use std::collections::BTreeMap;
use std::io;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// Default cap on one protocol line (1 MiB) — large enough for wide
/// `Open` batches, small enough that a hostile connection cannot balloon
/// the daemon's memory.
pub const DEFAULT_MAX_LINE_BYTES: usize = 1 << 20;

/// The selector backends the daemon can run — the same matrix the CLI's
/// offline `refine` exposes, so a served session is comparable to an
/// offline run of the same backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SelectorChoice {
    /// Cached-scatter greedy (Algorithm 1), the default.
    Greedy,
    /// Greedy over the preprocessed answer table (Algorithm 2).
    GreedyPre,
    /// The random baseline.
    Random,
}

impl SelectorChoice {
    /// Parses the CLI spelling.
    pub fn parse(name: &str) -> Result<SelectorChoice, String> {
        match name {
            "greedy" => Ok(SelectorChoice::Greedy),
            "greedy-pre" => Ok(SelectorChoice::GreedyPre),
            "random" => Ok(SelectorChoice::Random),
            other => Err(format!("unknown selector {other:?}")),
        }
    }

    /// Builds the selector. The selector stays serial for the same reason
    /// the offline sharded runner keeps it serial: session work already
    /// saturates the pool's workers.
    fn build(self) -> Box<dyn TaskSelector + Send + Sync> {
        match self {
            SelectorChoice::Greedy => Box::new(GreedySelector::fast()),
            SelectorChoice::GreedyPre => Box::new(GreedySelector::fast().with_preprocess()),
            SelectorChoice::Random => Box::new(RandomSelector),
        }
    }
}

/// Daemon construction parameters (the CLI `serve` flags).
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Master seed: per-session RNG streams derive from it in open order,
    /// exactly like the offline sharded runner's entity streams.
    pub seed: u64,
    /// Default per-session round configuration (`open` may override).
    pub defaults: RoundConfig,
    /// Worker-pool width for prior building and restores.
    pub threads: usize,
    /// Task selection backend.
    pub selector: SelectorChoice,
    /// Name of the fusion method clients are expected to have produced
    /// their marginals with (the `serve --method` flag). Validated against
    /// the [`crowdfusion_fusion::StrategyRegistry`] at construction;
    /// `Open` specs naming a method are validated against the same
    /// registry, and specs without one are treated as this default.
    pub method: String,
    /// Snapshot path confinement. `Some(dir)`: clients may only name bare
    /// file names, resolved inside `dir` — a network client can then
    /// never read or write outside it. `None`: client paths are taken
    /// verbatim — only appropriate when every client is as trusted as the
    /// operator (the default loopback bind).
    pub snapshot_dir: Option<std::path::PathBuf>,
    /// Crash safety: `Some` journals every mutation into this directory
    /// and auto-snapshots on its cadence; [`Service::new`] then recovers
    /// whatever state the directory already holds. `None` serves from
    /// memory only (the pre-durability behaviour).
    pub durability: Option<DurabilityConfig>,
    /// Deterministic fault schedule (tests); [`FaultPlan::none`] in
    /// production.
    pub faults: FaultPlan,
    /// Time source for TTL eviction. The system clock belongs at the
    /// server edge only; tests drive a manual clock.
    pub clock: Clock,
    /// Evict sessions idle longer than this many clock ticks (ms).
    /// `None` disables eviction.
    pub session_ttl_ms: Option<u64>,
    /// Per-connection read deadline in ms; a connection silent past it is
    /// closed. `None` waits forever.
    pub read_deadline_ms: Option<u64>,
    /// Reject protocol lines longer than this many bytes.
    pub max_line_bytes: usize,
}

impl ServiceConfig {
    /// The baseline configuration: no durability, no fault plan, system
    /// clock, no TTL or read deadline, default line cap.
    pub fn new(
        seed: u64,
        defaults: RoundConfig,
        threads: usize,
        selector: SelectorChoice,
    ) -> ServiceConfig {
        ServiceConfig {
            seed,
            defaults,
            threads,
            selector,
            method: crowdfusion_fusion::DEFAULT_METHOD.to_string(),
            snapshot_dir: None,
            durability: None,
            faults: FaultPlan::none(),
            clock: Clock::system(),
            session_ttl_ms: None,
            read_deadline_ms: None,
            max_line_bytes: DEFAULT_MAX_LINE_BYTES,
        }
    }
}

/// What applying an [`Effect`] produced (the payload the response is
/// built from).
enum EffectOutcome {
    Opened(Vec<OpenedSession>),
    Selected(SelectOutcome),
    Absorbed(AbsorbReport),
    Evicted,
}

/// Dispatch failure: a client-visible error message, or an injected
/// crash that must unwind past the response path entirely.
enum Fail {
    Msg(String),
    Crash(SimulatedCrash),
}

/// Maps an I/O error out of the durability layer: injected crashes
/// unwind, real failures become client-visible errors.
fn io_fail(err: io::Error, what: &str) -> Fail {
    match as_simulated_crash(&err) {
        Some(crash) => Fail::Crash(crash),
        None => Fail::Msg(format!("cannot {what}: {err}")),
    }
}

/// The mutable half of the daemon, guarded by one mutex.
struct Inner {
    registry: SessionRegistry,
    durable: Option<Durability>,
    /// Idempotency ledger: completed `Open`s by request token.
    opens: BTreeMap<u64, Vec<OpenedSession>>,
    /// Last tick each session was touched (TTL bookkeeping).
    last_active: BTreeMap<u64, Tick>,
}

impl Inner {
    /// Applies one effect to in-memory state. Deterministic given the
    /// registry state and the effect — the property journal replay leans
    /// on. `now` only feeds the TTL bookkeeping, never the outcome.
    fn apply(
        &mut self,
        selector: &dyn TaskSelector,
        effect: &Effect,
        now: Tick,
    ) -> Result<EffectOutcome, CoreError> {
        match effect {
            Effect::Open {
                request,
                entities,
                k,
                budget,
                pc,
            } => {
                let defaults = self.registry.defaults();
                let config = if k.is_some() || budget.is_some() || pc.is_some() {
                    Some(RoundConfig::new(
                        k.unwrap_or(defaults.k),
                        budget.unwrap_or(defaults.budget),
                        pc.unwrap_or(defaults.pc_assumed),
                    )?)
                } else {
                    None
                };
                let sessions = self.registry.open_batch(entities.clone(), config)?;
                for opened in &sessions {
                    self.last_active.insert(opened.session, now);
                }
                if let Some(token) = request {
                    self.opens.insert(*token, sessions.clone());
                }
                Ok(EffectOutcome::Opened(sessions))
            }
            Effect::Select { session } => {
                let outcome = self.registry.select(*session, selector)?;
                self.last_active.insert(*session, now);
                Ok(EffectOutcome::Selected(outcome))
            }
            Effect::Absorb { session, answers } => {
                // In-batch duplicates collapse through the crowd layer's
                // documented first-answer-wins dedup; the session then
                // rejects cross-batch repeats with the same rule, so the
                // two layers always agree on which answer counted.
                let as_answers: Vec<Answer> = answers
                    .iter()
                    .map(|a| Answer {
                        task: TaskId(a.task),
                        worker: WorkerId(0),
                        value: a.value,
                    })
                    .collect();
                let (kept, dropped) = dedup_answers(&as_answers);
                let pairs: Vec<(u64, bool)> = kept.iter().map(|a| (a.task.0, a.value)).collect();
                let mut report = self.registry.absorb(*session, &pairs)?;
                report.duplicates += dropped;
                self.last_active.insert(*session, now);
                Ok(EffectOutcome::Absorbed(report))
            }
            Effect::Evict { sessions } => {
                for &session in sessions {
                    // Already-gone sessions are fine: replay of an evict
                    // that raced a restore, say, should not fail.
                    let _ = self.registry.evict(session);
                    self.last_active.remove(&session);
                }
                Ok(EffectOutcome::Evicted)
            }
        }
    }

    /// The durable snapshot of everything in memory right now.
    fn durable_snapshot(&self, applied_seq: u64) -> DurableSnapshot {
        DurableSnapshot {
            applied_seq,
            registry: self.registry.snapshot(),
            opens: self
                .opens
                .iter()
                .map(|(&request, sessions)| CompletedOpen {
                    request,
                    sessions: sessions.clone(),
                })
                .collect(),
        }
    }
}

/// The long-lived daemon state shared by every connection.
pub struct Service {
    inner: Mutex<Inner>,
    selector: Box<dyn TaskSelector + Send + Sync>,
    /// The daemon's default fusion-method name (see
    /// [`ServiceConfig::method`]).
    method: String,
    threads: usize,
    snapshot_dir: Option<std::path::PathBuf>,
    clock: Clock,
    session_ttl_ms: Option<u64>,
    read_deadline_ms: Option<u64>,
    max_line_bytes: usize,
    faults: FaultPlan,
    shutdown: AtomicBool,
}

impl Service {
    /// Builds the daemon: one persistent worker pool, one selector, and —
    /// with durability configured — whatever state the durability
    /// directory holds, recovered as `snapshot + journal replay` and
    /// immediately re-compacted into a fresh snapshot. Fails only on
    /// durability I/O (including injected crashes during recovery: the
    /// chaos harness treats a failed boot as another death and boots
    /// again).
    pub fn new(config: ServiceConfig) -> io::Result<Service> {
        // The method name is operator input (`serve --method`): an unknown
        // name must fail the boot, not the first client to open a session.
        if let Err(e) = crowdfusion_fusion::StrategyRegistry::standard().build(&config.method) {
            return Err(io::Error::new(io::ErrorKind::InvalidInput, e.to_string()));
        }
        let pool = Pool::new(config.threads);
        let selector = config.selector.build();
        let clock = config.clock;
        let faults = config.faults;

        let mut inner = match config.durability {
            None => Inner {
                registry: SessionRegistry::new(config.seed, config.defaults, pool),
                durable: None,
                opens: BTreeMap::new(),
                last_active: BTreeMap::new(),
            },
            Some(durability) => {
                let recovery = recover(&durability.dir)?;
                let mut inner = Self::recovered_inner(
                    &recovery,
                    config.seed,
                    config.defaults,
                    pool,
                    selector.as_ref(),
                )?;
                let mut durable = Durability::open(durability, faults.clone(), &recovery)?;
                // Compact: one fresh snapshot covering everything just
                // recovered, so the journal restarts empty and a torn
                // tail (already dropped by recovery) is truncated away.
                let snapshot = inner.durable_snapshot(durable.last_seq());
                durable.snapshot_now(&snapshot)?;
                inner.durable = Some(durable);
                inner
            }
        };

        // Recovery has no record of wall time; every recovered session's
        // TTL restarts at boot.
        let now = clock.now_ms();
        for session in inner.registry.ids() {
            inner.last_active.insert(session, now);
        }

        Ok(Service {
            inner: Mutex::new(inner),
            selector,
            method: config.method,
            threads: config.threads,
            snapshot_dir: config.snapshot_dir,
            clock,
            session_ttl_ms: config.session_ttl_ms,
            read_deadline_ms: config.read_deadline_ms,
            max_line_bytes: config.max_line_bytes,
            faults,
            shutdown: AtomicBool::new(false),
        })
    }

    /// Rebuilds in-memory state from a recovery: the snapshot's registry
    /// (or a fresh one) with every post-snapshot journal record replayed
    /// through the same apply path live dispatch uses. Replay ignores
    /// per-effect errors: an effect that failed to apply before the crash
    /// fails identically now.
    fn recovered_inner(
        recovery: &Recovery,
        seed: u64,
        defaults: RoundConfig,
        pool: Pool,
        selector: &dyn TaskSelector,
    ) -> io::Result<Inner> {
        let mut opens = BTreeMap::new();
        let registry = match &recovery.snapshot {
            Some(snapshot) => {
                for open in &snapshot.opens {
                    opens.insert(open.request, open.sessions.clone());
                }
                SessionRegistry::from_snapshot(snapshot.registry.clone(), pool).map_err(|e| {
                    io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("durable snapshot failed validation: {e}"),
                    )
                })?
            }
            None => SessionRegistry::new(seed, defaults, pool),
        };
        let mut inner = Inner {
            registry,
            durable: None,
            opens,
            last_active: BTreeMap::new(),
        };
        for record in &recovery.replay {
            let _ = inner.apply(selector, &record.effect, 0);
        }
        Ok(inner)
    }

    /// Resolves a client-supplied snapshot path under the confinement
    /// policy (see [`ServiceConfig::snapshot_dir`]).
    fn resolve_snapshot_path(&self, path: &str) -> Result<std::path::PathBuf, String> {
        use std::path::Component;
        let Some(dir) = &self.snapshot_dir else {
            return Ok(std::path::PathBuf::from(path));
        };
        let p = std::path::Path::new(path);
        let mut components = p.components();
        let bare_file =
            matches!(components.next(), Some(Component::Normal(_))) && components.next().is_none();
        if !bare_file {
            return Err(format!(
                "snapshot path {path:?} must be a bare file name \
                 (snapshots are confined to the daemon's snapshot dir)"
            ));
        }
        Ok(dir.join(p))
    }

    /// Whether a `Shutdown` request has been served.
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Dispatches one request. Every failure maps to [`Response::Error`];
    /// the connection stays usable. (Injected crashes also surface as
    /// errors here — harnesses that must observe them use
    /// [`Service::try_handle`].)
    pub fn handle(&self, request: Request) -> Response {
        match self.try_handle(request) {
            Ok(response) => response,
            Err(crash) => Response::Error {
                message: crash.to_string(),
            },
        }
    }

    /// Dispatches one request, letting an injected [`SimulatedCrash`]
    /// unwind to the caller — the chaos harness treats that as process
    /// death and rebuilds the service from its durability directory.
    pub fn try_handle(&self, request: Request) -> Result<Response, SimulatedCrash> {
        match self.dispatch(request) {
            Ok(response) => Ok(response),
            Err(Fail::Msg(message)) => Ok(Response::Error { message }),
            Err(Fail::Crash(crash)) => Err(crash),
        }
    }

    /// Parses one wire line, dispatches it, encodes the response line.
    pub fn handle_line(&self, line: &str) -> String {
        let response = match crate::protocol::decode::<Request>(line) {
            Ok(request) => self.handle(request),
            Err(message) => Response::Error { message },
        };
        crate::protocol::encode(&response)
    }

    fn lock_inner(&self) -> Result<std::sync::MutexGuard<'_, Inner>, Fail> {
        self.inner.lock().map_err(|_| {
            Fail::Msg("service state poisoned by an earlier panic; restart the daemon".to_string())
        })
    }

    /// The write path: journal → injected-fault window → apply →
    /// auto-snapshot cadence. See the module docs for the crash-window
    /// argument.
    fn commit(&self, inner: &mut Inner, effect: Effect) -> Result<EffectOutcome, Fail> {
        let now = self.clock.now_ms();
        if let Some(durable) = inner.durable.as_mut() {
            durable
                .journal(effect.clone())
                .map_err(|e| io_fail(e, "append to the journal"))?;
        }
        self.faults
            .crash_if_scheduled(FaultPoint::EffectApply)
            .map_err(Fail::Crash)?;
        let outcome = inner
            .apply(self.selector.as_ref(), &effect, now)
            .map_err(|e| Fail::Msg(e.to_string()));
        // The cadence counts journalled effects whether or not the apply
        // succeeded — both are in the journal, both replay.
        if let Some(durable) = inner.durable.as_mut() {
            if durable.effect_applied() {
                let snapshot = DurableSnapshot {
                    applied_seq: durable.last_seq(),
                    registry: inner.registry.snapshot(),
                    opens: inner
                        .opens
                        .iter()
                        .map(|(&request, sessions)| CompletedOpen {
                            request,
                            sessions: sessions.clone(),
                        })
                        .collect(),
                };
                durable
                    .snapshot_now(&snapshot)
                    .map_err(|e| io_fail(e, "write the auto-snapshot"))?;
            }
        }
        outcome
    }

    /// Evicts sessions idle past the TTL, journalling the eviction as an
    /// explicit effect so replay never consults the clock.
    fn sweep_ttl(&self, inner: &mut Inner) -> Result<(), Fail> {
        let Some(ttl) = self.session_ttl_ms else {
            return Ok(());
        };
        let now = self.clock.now_ms();
        let expired: Vec<u64> = inner
            .last_active
            .iter()
            .filter(|&(_, &touched)| now.saturating_sub(touched) > ttl)
            .map(|(&session, _)| session)
            .collect();
        if expired.is_empty() {
            return Ok(());
        }
        self.commit(inner, Effect::Evict { sessions: expired })?;
        Ok(())
    }

    fn dispatch(&self, request: Request) -> Result<Response, Fail> {
        let err = |e: CoreError| Fail::Msg(e.to_string());
        // The client-directed snapshot export serialises and writes
        // *outside* the lock so a large export never stalls other
        // connections' traffic — the lock is held only for the clone.
        if let Request::Snapshot { path } = request {
            let resolved = self.resolve_snapshot_path(&path).map_err(Fail::Msg)?;
            let snap = {
                let mut inner = self.lock_inner()?;
                self.sweep_ttl(&mut inner)?;
                inner.registry.snapshot()
            };
            let sessions = snap.sessions.len() as u64;
            snapshot::save(&snap, &resolved)
                .map_err(|e| Fail::Msg(format!("cannot write snapshot {path}: {e}")))?;
            return Ok(Response::Snapshotted { path, sessions });
        }
        if let Request::Restore { path } = request {
            let resolved = self.resolve_snapshot_path(&path).map_err(Fail::Msg)?;
            let snap = snapshot::load(&resolved)
                .map_err(|e| Fail::Msg(format!("cannot read snapshot {path}: {e}")))?;
            let mut guard = self.lock_inner()?;
            let inner: &mut Inner = &mut guard;
            let pool = inner.registry.pool().clone();
            let restored = SessionRegistry::from_snapshot(snap, pool).map_err(err)?;
            let sessions = restored.len() as u64;
            inner.registry = restored;
            // The ledger described sessions that no longer exist.
            inner.opens.clear();
            let now = self.clock.now_ms();
            inner.last_active = inner
                .registry
                .ids()
                .into_iter()
                .map(|session| (session, now))
                .collect();
            // Durability barrier: the restore replaces history, so the
            // restored state becomes the new recovery base at once.
            if let Some(durable) = inner.durable.as_mut() {
                let snapshot = DurableSnapshot {
                    applied_seq: durable.last_seq(),
                    registry: inner.registry.snapshot(),
                    opens: Vec::new(),
                };
                durable
                    .snapshot_now(&snapshot)
                    .map_err(|e| io_fail(e, "persist the restored state"))?;
            }
            return Ok(Response::Restored { path, sessions });
        }

        let mut guard = self.lock_inner()?;
        let inner: &mut Inner = &mut guard;
        self.sweep_ttl(inner)?;
        match request {
            Request::Open {
                request,
                entities,
                k,
                budget,
                pc,
            } => {
                // At-least-once: a retried token returns the recorded
                // payload, opening nothing.
                if let Some(token) = request {
                    if let Some(sessions) = inner.opens.get(&token) {
                        return Ok(Response::Opened {
                            sessions: sessions.clone(),
                        });
                    }
                }
                // Pre-validate so malformed opens are rejected before the
                // journal sees them. A spec naming a fusion method must
                // name a registered one (absent = the daemon's default).
                let registry = crowdfusion_fusion::StrategyRegistry::standard();
                for spec in &entities {
                    spec.validate().map_err(err)?;
                    if let Some(method) = &spec.method {
                        registry
                            .build(method)
                            .map_err(|e| Fail::Msg(e.to_string()))?;
                    }
                }
                if k.is_some() || budget.is_some() || pc.is_some() {
                    let defaults = inner.registry.defaults();
                    RoundConfig::new(
                        k.unwrap_or(defaults.k),
                        budget.unwrap_or(defaults.budget),
                        pc.unwrap_or(defaults.pc_assumed),
                    )
                    .map_err(err)?;
                }
                let outcome = self.commit(
                    inner,
                    Effect::Open {
                        request,
                        entities,
                        k,
                        budget,
                        pc,
                    },
                )?;
                match outcome {
                    EffectOutcome::Opened(sessions) => Ok(Response::Opened { sessions }),
                    _ => unreachable!("open applies to Opened"),
                }
            }
            Request::Select { session } => {
                // Journal only when selection will mutate (draw RNG, open
                // a round, or flip to exhausted); re-reading an open round
                // and polling an exhausted session are pure reads.
                let state = inner.registry.get(session).map_err(err)?;
                let mutates = !state.has_open_round() && !state.is_exhausted();
                let effect = Effect::Select { session };
                let outcome = if mutates {
                    self.commit(inner, effect)?
                } else {
                    let now = self.clock.now_ms();
                    inner
                        .apply(self.selector.as_ref(), &effect, now)
                        .map_err(err)?
                };
                match outcome {
                    EffectOutcome::Selected(SelectOutcome::Round(round)) => Ok(Response::Round {
                        session,
                        round: round.round,
                        tasks: round.tasks,
                    }),
                    EffectOutcome::Selected(SelectOutcome::Exhausted) => {
                        let state = inner.registry.get(session).map_err(err)?;
                        Ok(Response::Exhausted {
                            session,
                            rounds: state.rounds(),
                            spent: state.spent(),
                        })
                    }
                    _ => unreachable!("select applies to Selected"),
                }
            }
            Request::Absorb { session, answers } => {
                // The session must exist before the batch is journalled;
                // in-batch errors (unknown ids, no open round) journal and
                // fail identically on replay.
                inner.registry.get(session).map_err(err)?;
                let outcome = self.commit(inner, Effect::Absorb { session, answers })?;
                match outcome {
                    EffectOutcome::Absorbed(report) => Ok(Response::Absorbed {
                        session,
                        accepted: report.accepted,
                        duplicates: report.duplicates,
                        pending: report.pending,
                        closed: report.closed,
                    }),
                    _ => unreachable!("absorb applies to Absorbed"),
                }
            }
            Request::Snapshot { .. } | Request::Restore { .. } => {
                unreachable!("snapshot verbs are handled before the main lock scope")
            }
            Request::Status { session } => {
                let state = inner.registry.get(session).map_err(err)?;
                let response = Response::Status {
                    session,
                    name: state.name().to_string(),
                    facts: state.num_facts(),
                    rounds: state.rounds(),
                    spent: state.spent(),
                    remaining: state.remaining(),
                    pending: state.pending_answers(),
                    exhausted: state.is_exhausted(),
                    utility: state.utility(),
                    entropy: state.entropy(),
                };
                // A status poll counts as activity: watching a session
                // keeps it alive.
                let now = self.clock.now_ms();
                inner.last_active.insert(session, now);
                Ok(response)
            }
            Request::Metrics => Ok(Response::Metrics {
                metrics: inner.registry.metrics(),
            }),
            Request::Trace => Ok(Response::Trace {
                trace: inner.registry.trace(self.selector.name()),
            }),
            Request::Shutdown => {
                // Drain: open rounds and partial answers persist in a
                // final snapshot instead of dying with the process. A
                // *real* I/O failure here still shuts down — the journal
                // already holds everything the snapshot would (synced
                // below) — but an injected crash unwinds like any other.
                if let Some(durable) = inner.durable.as_mut() {
                    let snapshot = DurableSnapshot {
                        applied_seq: durable.last_seq(),
                        registry: inner.registry.snapshot(),
                        opens: inner
                            .opens
                            .iter()
                            .map(|(&request, sessions)| CompletedOpen {
                                request,
                                sessions: sessions.clone(),
                            })
                            .collect(),
                    };
                    if let Err(e) = durable.snapshot_now(&snapshot) {
                        if let Some(crash) = as_simulated_crash(&e) {
                            return Err(Fail::Crash(crash));
                        }
                        let _ = durable.sync();
                        eprintln!(
                            "crowdfusion-serve: final snapshot failed ({e}); \
                             shutting down on the synced journal"
                        );
                    }
                }
                self.shutdown.store(true, Ordering::SeqCst);
                Ok(Response::Bye)
            }
        }
    }

    /// Worker-pool width (used to size pools for restored registries).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The daemon's default fusion-method name.
    pub fn method(&self) -> &str {
        &self.method
    }

    /// The per-connection read deadline, if one is configured.
    pub fn read_deadline_ms(&self) -> Option<u64> {
        self.read_deadline_ms
    }

    /// The protocol line-length cap.
    pub fn max_line_bytes(&self) -> usize {
        self.max_line_bytes
    }

    /// The fault schedule (transports consult the connection points).
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.faults
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::WireAnswer as WA;
    use crowdfusion_core::session::EntitySpec;
    use std::sync::atomic::AtomicU64;

    static NEXT_DIR: AtomicU64 = AtomicU64::new(0);

    fn temp_dir(label: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "crowdfusion-service-{label}-{}-{}",
            std::process::id(),
            NEXT_DIR.fetch_add(1, Ordering::SeqCst)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn base_config() -> ServiceConfig {
        ServiceConfig::new(
            7,
            RoundConfig::new(2, 6, 0.8).unwrap(),
            2,
            SelectorChoice::Greedy,
        )
    }

    fn service() -> Service {
        Service::new(base_config()).unwrap()
    }

    fn spec() -> EntitySpec {
        EntitySpec::simple("b", vec![0.5, 0.6, 0.7], vec![true, false, true])
    }

    fn open_one(svc: &Service, request: Option<u64>) -> Vec<OpenedSession> {
        let Response::Opened { sessions } = svc.handle(Request::Open {
            request,
            entities: vec![spec()],
            k: None,
            budget: None,
            pc: None,
        }) else {
            panic!("open failed");
        };
        sessions
    }

    #[test]
    fn selector_choice_parses_the_cli_matrix() {
        assert_eq!(
            SelectorChoice::parse("greedy").unwrap(),
            SelectorChoice::Greedy
        );
        assert_eq!(
            SelectorChoice::parse("greedy-pre").unwrap(),
            SelectorChoice::GreedyPre
        );
        assert_eq!(
            SelectorChoice::parse("random").unwrap(),
            SelectorChoice::Random
        );
        assert!(SelectorChoice::parse("oracle").is_err());
    }

    #[test]
    fn open_select_absorb_cycle_end_to_end() {
        let svc = service();
        let sessions = open_one(&svc, None);
        let id = sessions[0].session;
        let Response::Round { tasks, round, .. } = svc.handle(Request::Select { session: id })
        else {
            panic!("select failed");
        };
        assert_eq!(round, 1);
        assert_eq!(tasks.len(), 2);
        let answers: Vec<WA> = tasks
            .iter()
            .map(|t| WA {
                task: t.id,
                value: true,
            })
            .collect();
        let Response::Absorbed {
            accepted,
            pending,
            closed,
            ..
        } = svc.handle(Request::Absorb {
            session: id,
            answers,
        })
        else {
            panic!("absorb failed");
        };
        assert_eq!(accepted, 2);
        assert_eq!(pending, 0);
        assert!(closed.is_some());
        let Response::Status { rounds, spent, .. } = svc.handle(Request::Status { session: id })
        else {
            panic!("status failed");
        };
        assert_eq!((rounds, spent), (1, 2));
        let Response::Metrics { metrics } = svc.handle(Request::Metrics) else {
            panic!("metrics failed");
        };
        assert_eq!(metrics.judgments, 2);
    }

    #[test]
    fn method_names_are_validated_at_boot_and_open() {
        // Boot: an unknown --method fails construction with the registry's
        // full listing, before any client connects.
        let mut config = base_config();
        config.method = "lda".to_string();
        let Err(err) = Service::new(config) else {
            panic!("unknown method must fail the boot");
        };
        assert!(err.to_string().contains("unknown fusion method"));
        assert!(err.to_string().contains("modified-crh"));

        // A non-default registered method boots and is visible.
        let mut config = base_config();
        config.method = "truthfinder".to_string();
        let svc = Service::new(config).unwrap();
        assert_eq!(svc.method(), "truthfinder");

        // Open: specs naming a registered method pass; unknown names are
        // rejected before the journal would see them.
        let mut tagged = spec();
        tagged.method = Some("per-attribute".to_string());
        let Response::Opened { sessions } = svc.handle(Request::Open {
            request: None,
            entities: vec![tagged],
            k: None,
            budget: None,
            pc: None,
        }) else {
            panic!("tagged open failed");
        };
        assert_eq!(sessions.len(), 1);
        let mut bogus = spec();
        bogus.method = Some("lda".to_string());
        let response = svc.handle(Request::Open {
            request: None,
            entities: vec![bogus],
            k: None,
            budget: None,
            pc: None,
        });
        assert!(
            matches!(response, Response::Error { ref message } if message.contains("unknown fusion method")),
            "{response:?}"
        );
    }

    #[test]
    fn errors_are_responses_not_disconnects() {
        let svc = service();
        assert!(matches!(
            svc.handle(Request::Select { session: 42 }),
            Response::Error { .. }
        ));
        assert!(matches!(
            svc.handle(Request::Open {
                request: None,
                entities: vec![spec()],
                k: Some(0),
                budget: None,
                pc: None,
            }),
            Response::Error { .. }
        ));
        let reply = svc.handle_line("{garbage");
        assert!(reply.contains("Error"));
        // Still serving afterwards.
        assert!(matches!(
            svc.handle(Request::Metrics),
            Response::Metrics { .. }
        ));
    }

    #[test]
    fn retried_open_token_replays_the_original_response() {
        let svc = service();
        let first = open_one(&svc, Some(11));
        let retry = open_one(&svc, Some(11));
        assert_eq!(first, retry, "token retry must not open new sessions");
        let Response::Metrics { metrics } = svc.handle(Request::Metrics) else {
            panic!("metrics failed");
        };
        assert_eq!(metrics.sessions, 1);
        // A different token (and no token at all) opens fresh sessions.
        let other = open_one(&svc, Some(12));
        assert_ne!(first[0].session, other[0].session);
        open_one(&svc, None);
        let Response::Metrics { metrics } = svc.handle(Request::Metrics) else {
            panic!("metrics failed");
        };
        assert_eq!(metrics.sessions, 3);
    }

    #[test]
    fn absorb_routes_in_batch_duplicates_through_crowd_dedup() {
        // Regression for the ingest boundary: a batch that repeats a task
        // id keeps the FIRST occurrence (even when values conflict) and
        // counts the rest as duplicates — exactly dedup_answers' rule.
        let svc = service();
        let id = open_one(&svc, None)[0].session;
        let Response::Round { tasks, .. } = svc.handle(Request::Select { session: id }) else {
            panic!("select failed");
        };
        let t0 = tasks[0].id;
        let batch = vec![
            WA {
                task: t0,
                value: true,
            },
            WA {
                task: t0,
                value: false, // conflicting redelivery, dropped
            },
            WA {
                task: t0,
                value: true, // agreeing redelivery, also dropped
            },
        ];
        let Response::Absorbed {
            accepted,
            duplicates,
            pending,
            ..
        } = svc.handle(Request::Absorb {
            session: id,
            answers: batch,
        })
        else {
            panic!("absorb failed");
        };
        assert_eq!((accepted, duplicates, pending), (1, 2, 1));
        // Re-delivering the whole original answer across batches is also
        // one duplicate per repeat (session-level dedup).
        let Response::Absorbed {
            accepted,
            duplicates,
            ..
        } = svc.handle(Request::Absorb {
            session: id,
            answers: vec![WA {
                task: t0,
                value: false,
            }],
        })
        else {
            panic!("absorb failed");
        };
        assert_eq!((accepted, duplicates), (0, 1));
    }

    #[test]
    fn idle_sessions_are_evicted_on_the_manual_clock() {
        let clock = Clock::manual();
        let mut config = base_config();
        config.clock = clock.clone();
        config.session_ttl_ms = Some(1_000);
        let svc = Service::new(config).unwrap();
        let id = open_one(&svc, None)[0].session;
        // Touch within the TTL: stays alive.
        clock.advance(900);
        assert!(matches!(
            svc.handle(Request::Status { session: id }),
            Response::Status { .. }
        ));
        clock.advance(999);
        assert!(matches!(
            svc.handle(Request::Status { session: id }),
            Response::Status { .. }
        ));
        // Idle past the TTL: the next request sweeps it away.
        clock.advance(1_001);
        assert!(matches!(
            svc.handle(Request::Status { session: id }),
            Response::Error { .. }
        ));
        let Response::Metrics { metrics } = svc.handle(Request::Metrics) else {
            panic!("metrics failed");
        };
        assert_eq!(metrics.sessions, 0);
    }

    #[test]
    fn durable_service_recovers_sessions_across_restart() {
        let dir = temp_dir("restart");
        let mut config = base_config();
        config.durability = Some(DurabilityConfig::new(&dir));
        let svc = Service::new(config.clone()).unwrap();
        let id = open_one(&svc, Some(5))[0].session;
        let Response::Round { tasks, .. } = svc.handle(Request::Select { session: id }) else {
            panic!("select failed");
        };
        // Absorb one of two answers, then DROP the service: no shutdown,
        // no drain — the journal alone must carry the partial round.
        let Response::Absorbed { pending, .. } = svc.handle(Request::Absorb {
            session: id,
            answers: vec![WA {
                task: tasks[0].id,
                value: true,
            }],
        }) else {
            panic!("absorb failed");
        };
        assert_eq!(pending, 1);
        drop(svc);

        let revived = Service::new(config).unwrap();
        let Response::Status { pending, spent, .. } =
            revived.handle(Request::Status { session: id })
        else {
            panic!("status failed");
        };
        assert_eq!((pending, spent), (1, 0), "partial round must survive");
        // The idempotency ledger also survived.
        let retry = open_one(&revived, Some(5));
        assert_eq!(retry[0].session, id);
        let Response::Metrics { metrics } = revived.handle(Request::Metrics) else {
            panic!("metrics failed");
        };
        assert_eq!(metrics.sessions, 1);
    }

    #[test]
    fn shutdown_drains_to_a_final_snapshot() {
        let dir = temp_dir("drain");
        let mut config = base_config();
        config.durability = Some(DurabilityConfig::new(&dir));
        let svc = Service::new(config.clone()).unwrap();
        let id = open_one(&svc, None)[0].session;
        svc.handle(Request::Select { session: id });
        assert_eq!(svc.handle(Request::Shutdown), Response::Bye);
        assert!(svc.shutdown_requested());
        drop(svc);
        // The journal is empty (truncated by the final snapshot) and the
        // snapshot alone restores the open round.
        let recovered = crate::durable::recover(&dir).unwrap();
        assert!(recovered.replay.is_empty());
        assert!(recovered.snapshot.is_some());
        let revived = Service::new(config).unwrap();
        let Response::Status { pending, .. } = revived.handle(Request::Status { session: id })
        else {
            panic!("status failed");
        };
        assert_eq!(pending, 2, "open round drained into the snapshot");
    }

    #[test]
    fn snapshot_dir_confines_client_paths() {
        let dir = temp_dir("confine");
        let mut config = base_config();
        config.threads = 1;
        config.snapshot_dir = Some(dir.clone());
        let svc = Service::new(config.clone()).unwrap();
        // Traversal and absolute paths are rejected without touching disk.
        for bad in ["../escape.json", "/etc/hostname", "a/b.json", ""] {
            let response = svc.handle(Request::Snapshot {
                path: bad.to_string(),
            });
            assert!(
                matches!(response, Response::Error { ref message } if message.contains("bare file name")),
                "path {bad:?} gave {response:?}"
            );
        }
        // A bare file name lands inside the configured directory.
        assert!(matches!(
            svc.handle(Request::Snapshot {
                path: "ok.json".to_string(),
            }),
            Response::Snapshotted { .. }
        ));
        assert!(dir.join("ok.json").exists());
        assert!(matches!(
            svc.handle(Request::Restore {
                path: "ok.json".to_string(),
            }),
            Response::Restored { .. }
        ));
        std::fs::remove_file(dir.join("ok.json")).ok();
        // Unconfined daemons keep verbatim paths (trusted operators).
        config.snapshot_dir = None;
        let open = Service::new(config).unwrap();
        let path = dir.join("direct.json").to_string_lossy().into_owned();
        assert!(matches!(
            open.handle(Request::Snapshot { path: path.clone() }),
            Response::Snapshotted { .. }
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn shutdown_sets_the_flag() {
        let svc = service();
        assert!(!svc.shutdown_requested());
        assert_eq!(svc.handle(Request::Shutdown), Response::Bye);
        assert!(svc.shutdown_requested());
    }
}
