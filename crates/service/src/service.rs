//! The daemon state: a lock-striped [`ShardedRegistry`] plus its
//! durability engine, one selector, and the journalled request
//! dispatcher.
//!
//! **Dispatch protocol** (the write path, when durability is on):
//!
//! 1. pre-validate — errors here are rejected without a journal entry;
//! 2. journal the [`Effect`] (the record is durable before anything
//!    mutates);
//! 3. apply the effect to in-memory state;
//! 4. count it against the auto-snapshot cadence, snapshotting + journal-
//!    truncating when due.
//!
//! A crash between (2) and (3) is repaired by replay on restart; a
//! journalled effect whose *apply* fails (e.g. an `Absorb` naming an
//! unknown task id) fails identically when replayed, so attempted
//! mutations are safe to journal. Reads (`Status`, `Metrics`, `Trace`,
//! the client-directed `Snapshot` export) and idempotent re-reads
//! (`Select` on an already-open round) skip the journal entirely.
//!
//! **Lock hierarchy** (acquire strictly in this order; every path holds a
//! strict subset):
//!
//! 1. `order` — serialises the effects that touch the master seed
//!    schedule or many shards at once (`Open`, TTL `Evict`): journal
//!    order must equal master-RNG draw order for replay to reproduce the
//!    seed schedule;
//! 2. `registry` (an `RwLock`) — commits hold it *shared* across
//!    journal+apply; consistent whole-state operations (auto-snapshot,
//!    restore, shutdown drain) hold it *exclusive*, which guarantees no
//!    journalled-but-unapplied effect exists while `applied_seq` is
//!    stamped;
//! 3. `shard_order[i]` — serialises journal+apply per registry shard, so
//!    a session's journal order equals its apply order;
//! 4. leaves — `durable`, `opens`, `last_active`, and the registry's own
//!    internal stripes; none acquires anything above it.
//!
//! The auto-snapshot cadence is *deferred*: a commit that brings the
//! cadence due releases its effect locks first, then takes the registry
//! exclusively and snapshots — still within the same request dispatch,
//! so the fault-point arrival order a serial caller observes is identical
//! to the single-lock daemon's.
//!
//! At-least-once ingest: `Open` accepts an idempotency token — retried
//! tokens return the recorded `Opened` payload from a ledger that
//! persists in the durable snapshot; `Select` is idempotent while a
//! round is open; `Absorb` routes through
//! [`crowdfusion_crowd::dedup_answers`] and the session's own
//! first-answer-wins ingestion, so redelivered batches collapse to one.
//! Sessions idle past the configured TTL are evicted by a sweep that
//! journals an explicit [`Effect::Evict`] — replay never consults the
//! clock.

use crate::clock::{Clock, Tick};
use crate::durable::{
    recover, CompletedOpen, Durability, DurabilityConfig, DurableSnapshot, Recovery,
};
use crate::fault::{as_simulated_crash, FaultPlan, FaultPoint, SimulatedCrash};
use crate::journal::Effect;
use crate::protocol::{Request, Response};
use crate::sched::{BudgetMode, SchedSnapshot, SchedState};
use crate::snapshot;
use crowdfusion_core::pool::Pool;
use crowdfusion_core::round::RoundConfig;
use crowdfusion_core::sched::{BudgetLedger, GainQueue};
use crowdfusion_core::selection::{GreedySelector, RandomSelector, TaskSelector};
use crowdfusion_core::session::{AbsorbReport, OpenedSession, SelectOutcome};
use crowdfusion_core::shard::ShardedRegistry;
use crowdfusion_core::CoreError;
use crowdfusion_crowd::{dedup_answers, Answer, TaskId, WorkerId};
use std::collections::BTreeMap;
use std::io;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Default cap on one protocol line (1 MiB) — large enough for wide
/// `Open` batches, small enough that a hostile connection cannot balloon
/// the daemon's memory.
pub const DEFAULT_MAX_LINE_BYTES: usize = 1 << 20;

/// Default registry shard (lock-stripe) count. Eight stripes keep the
/// 4-core CI box's reactors out of each other's way without bloating the
/// per-daemon footprint; shard count is a pure tuning knob — snapshots
/// and traces are shard-count independent.
pub const DEFAULT_SHARDS: usize = 8;

/// The selector backends the daemon can run — the same matrix the CLI's
/// offline `refine` exposes, so a served session is comparable to an
/// offline run of the same backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SelectorChoice {
    /// Cached-scatter greedy (Algorithm 1), the default.
    Greedy,
    /// Greedy over the preprocessed answer table (Algorithm 2).
    GreedyPre,
    /// The random baseline.
    Random,
}

impl SelectorChoice {
    /// Parses the CLI spelling.
    pub fn parse(name: &str) -> Result<SelectorChoice, String> {
        match name {
            "greedy" => Ok(SelectorChoice::Greedy),
            "greedy-pre" => Ok(SelectorChoice::GreedyPre),
            "random" => Ok(SelectorChoice::Random),
            other => Err(format!("unknown selector {other:?}")),
        }
    }

    /// Builds the selector. The selector stays serial for the same reason
    /// the offline sharded runner keeps it serial: session work already
    /// saturates the pool's workers.
    fn build(self) -> Box<dyn TaskSelector + Send + Sync> {
        match self {
            SelectorChoice::Greedy => Box::new(GreedySelector::fast()),
            SelectorChoice::GreedyPre => Box::new(GreedySelector::fast().with_preprocess()),
            SelectorChoice::Random => Box::new(RandomSelector),
        }
    }
}

/// Daemon construction parameters (the CLI `serve` flags).
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Master seed: per-session RNG streams derive from it in open order,
    /// exactly like the offline sharded runner's entity streams.
    pub seed: u64,
    /// Default per-session round configuration (`open` may override).
    pub defaults: RoundConfig,
    /// Worker-pool width for prior building and restores.
    pub threads: usize,
    /// Registry shard (lock-stripe) count. Purely a concurrency knob:
    /// traces, metrics and snapshots are bit-identical at any value.
    pub shards: usize,
    /// Task selection backend.
    pub selector: SelectorChoice,
    /// Name of the fusion method clients are expected to have produced
    /// their marginals with (the `serve --method` flag). Validated against
    /// the [`crowdfusion_fusion::StrategyRegistry`] at construction;
    /// `Open` specs naming a method are validated against the same
    /// registry, and specs without one are treated as this default.
    pub method: String,
    /// Snapshot path confinement. `Some(dir)`: clients may only name bare
    /// file names, resolved inside `dir` — a network client can then
    /// never read or write outside it. `None`: client paths are taken
    /// verbatim — only appropriate when every client is as trusted as the
    /// operator (the default loopback bind).
    pub snapshot_dir: Option<std::path::PathBuf>,
    /// Crash safety: `Some` journals every mutation into this directory
    /// and auto-snapshots on its cadence; [`Service::new`] then recovers
    /// whatever state the directory already holds. `None` serves from
    /// memory only (the pre-durability behaviour).
    pub durability: Option<DurabilityConfig>,
    /// Deterministic fault schedule (tests); [`FaultPlan::none`] in
    /// production.
    pub faults: FaultPlan,
    /// Time source for TTL eviction. The system clock belongs at the
    /// server edge only; tests drive a manual clock.
    pub clock: Clock,
    /// Evict sessions idle longer than this many clock ticks (ms).
    /// `None` disables eviction.
    pub session_ttl_ms: Option<u64>,
    /// Per-connection read deadline in ms; a connection silent past it is
    /// closed. `None` waits forever.
    pub read_deadline_ms: Option<u64>,
    /// Reject protocol lines longer than this many bytes.
    pub max_line_bytes: usize,
    /// How crowd budget is spent: per-session (the default, bit-identical
    /// to the pre-scheduler daemon) or one shared pool admitted in
    /// marginal-gain order via the `Schedule` verb.
    pub budget_mode: BudgetMode,
    /// The shared judgment pool for [`BudgetMode::Global`]; ignored in
    /// per-session mode. A zero grant is born exhausted.
    pub global_budget: u64,
}

impl ServiceConfig {
    /// The baseline configuration: no durability, no fault plan, system
    /// clock, no TTL or read deadline, default line cap and shard count.
    pub fn new(
        seed: u64,
        defaults: RoundConfig,
        threads: usize,
        selector: SelectorChoice,
    ) -> ServiceConfig {
        ServiceConfig {
            seed,
            defaults,
            threads,
            shards: DEFAULT_SHARDS,
            selector,
            method: crowdfusion_fusion::DEFAULT_METHOD.to_string(),
            snapshot_dir: None,
            durability: None,
            faults: FaultPlan::none(),
            clock: Clock::system(),
            session_ttl_ms: None,
            read_deadline_ms: None,
            max_line_bytes: DEFAULT_MAX_LINE_BYTES,
            budget_mode: BudgetMode::PerSession,
            global_budget: 0,
        }
    }
}

/// What applying an [`Effect`] produced (the payload the response is
/// built from).
enum EffectOutcome {
    Opened(Vec<OpenedSession>),
    Selected(SelectOutcome),
    Absorbed(AbsorbReport),
    Evicted,
}

/// Dispatch failure: a client-visible error message, or an injected
/// crash that must unwind past the response path entirely.
enum Fail {
    Msg(String),
    Crash(SimulatedCrash),
}

/// Maps an I/O error out of the durability layer: injected crashes
/// unwind, real failures become client-visible errors.
fn io_fail(err: io::Error, what: &str) -> Fail {
    match as_simulated_crash(&err) {
        Some(crash) => Fail::Crash(crash),
        None => Fail::Msg(format!("cannot {what}: {err}")),
    }
}

/// Locks a service-level mutex, recovering from poisoning. The registry's
/// own stripes panic on poison (a panic mid-apply is a library bug); the
/// service-level maps and the durability handle are only ever mutated in
/// single, non-panicking steps, so continuing past a poisoned guard is
/// sound.
fn lease<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

fn lease_read<T>(l: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    l.read().unwrap_or_else(|e| e.into_inner())
}

fn lease_write<T>(l: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    l.write().unwrap_or_else(|e| e.into_inner())
}

/// Applies one effect to in-memory state. Deterministic given the
/// registry state and the effect — the property journal replay leans on.
/// `now` only feeds the TTL bookkeeping, never the outcome. Free of any
/// service-level serialisation: the *caller* holds whatever ordering
/// locks the effect class requires.
fn apply_effect(
    selector: &dyn TaskSelector,
    registry: &ShardedRegistry,
    opens: &Mutex<BTreeMap<u64, Vec<OpenedSession>>>,
    last_active: &Mutex<BTreeMap<u64, Tick>>,
    effect: &Effect,
    now: Tick,
) -> Result<EffectOutcome, CoreError> {
    match effect {
        Effect::Open {
            request,
            entities,
            k,
            budget,
            pc,
        } => {
            let defaults = registry.defaults();
            let config = if k.is_some() || budget.is_some() || pc.is_some() {
                Some(RoundConfig::new(
                    k.unwrap_or(defaults.k),
                    budget.unwrap_or(defaults.budget),
                    pc.unwrap_or(defaults.pc_assumed),
                )?)
            } else {
                None
            };
            let sessions = registry.open_batch(entities.clone(), config)?;
            {
                let mut last_active = lease(last_active);
                for opened in &sessions {
                    last_active.insert(opened.session, now);
                }
            }
            if let Some(token) = request {
                lease(opens).insert(*token, sessions.clone());
            }
            Ok(EffectOutcome::Opened(sessions))
        }
        Effect::Select { session } => {
            let outcome = registry.select(*session, selector)?;
            lease(last_active).insert(*session, now);
            Ok(EffectOutcome::Selected(outcome))
        }
        Effect::Absorb { session, answers } => {
            // In-batch duplicates collapse through the crowd layer's
            // documented first-answer-wins dedup; the session then
            // rejects cross-batch repeats with the same rule, so the
            // two layers always agree on which answer counted.
            let as_answers: Vec<Answer> = answers
                .iter()
                .map(|a| Answer {
                    task: TaskId(a.task),
                    worker: WorkerId(0),
                    value: a.value,
                })
                .collect();
            let (kept, dropped) = dedup_answers(&as_answers);
            let pairs: Vec<(u64, bool)> = kept.iter().map(|a| (a.task.0, a.value)).collect();
            let mut report = registry.absorb(*session, &pairs)?;
            report.duplicates += dropped;
            lease(last_active).insert(*session, now);
            Ok(EffectOutcome::Absorbed(report))
        }
        Effect::Evict { sessions } => {
            let mut last_active = lease(last_active);
            for &session in sessions {
                // Already-gone sessions are fine: replay of an evict
                // that raced a restore, say, should not fail.
                let _ = registry.evict(session);
                last_active.remove(&session);
            }
            Ok(EffectOutcome::Evicted)
        }
        Effect::Schedule { session, cap, .. } => {
            // A scheduler admission: the same selection a plain `Select`
            // makes, but capped by the global budget remaining at
            // admission time. Deterministic given registry state and the
            // journalled cap, so replay reopens the identical round —
            // and recharges the ledger from the round it reopened.
            let outcome = registry.select_capped(*session, selector, Some(*cap))?;
            lease(last_active).insert(*session, now);
            Ok(EffectOutcome::Selected(outcome))
        }
    }
}

/// The long-lived daemon state shared by every connection.
pub struct Service {
    /// Shared for commits (journal+apply under `shard_order`/`order`),
    /// exclusive for consistent whole-state work (auto-snapshot, restore,
    /// shutdown drain).
    registry: RwLock<ShardedRegistry>,
    /// The durability engine (journal writer + snapshot cadence). Leaf.
    durable: Mutex<Option<Durability>>,
    /// Idempotency ledger: completed `Open`s by request token. Leaf.
    opens: Mutex<BTreeMap<u64, Vec<OpenedSession>>>,
    /// Last tick each session was touched (TTL bookkeeping). Leaf.
    last_active: Mutex<BTreeMap<u64, Tick>>,
    /// Serialises master-schedule / multi-shard effects (`Open`, `Evict`)
    /// so journal order equals master-RNG draw order.
    order: Mutex<()>,
    /// Per-shard journal+apply serialisation for `Select`/`Absorb`.
    shard_order: Vec<Mutex<()>>,
    /// Global-scheduler state; `Some` exactly when
    /// [`ServiceConfig::budget_mode`] is global. A true leaf: it is
    /// locked briefly to read or apply already-computed updates and is
    /// NEVER held while acquiring the registry, a stripe, or the
    /// durability handle — gain computations happen against the registry
    /// first, then land here.
    sched: Mutex<Option<SchedState>>,
    budget_mode: BudgetMode,
    selector: Box<dyn TaskSelector + Send + Sync>,
    /// The daemon's default fusion-method name (see
    /// [`ServiceConfig::method`]).
    method: String,
    threads: usize,
    shards: usize,
    snapshot_dir: Option<std::path::PathBuf>,
    clock: Clock,
    session_ttl_ms: Option<u64>,
    read_deadline_ms: Option<u64>,
    max_line_bytes: usize,
    faults: FaultPlan,
    shutdown: AtomicBool,
}

impl Service {
    /// Builds the daemon: one persistent worker pool, one selector, and —
    /// with durability configured — whatever state the durability
    /// directory holds, recovered as `snapshot + journal replay` and
    /// immediately re-compacted into a fresh snapshot. Fails only on
    /// durability I/O (including injected crashes during recovery: the
    /// chaos harness treats a failed boot as another death and boots
    /// again).
    pub fn new(config: ServiceConfig) -> io::Result<Service> {
        // The method name is operator input (`serve --method`): an unknown
        // name must fail the boot, not the first client to open a session.
        if let Err(e) = crowdfusion_fusion::StrategyRegistry::standard().build(&config.method) {
            return Err(io::Error::new(io::ErrorKind::InvalidInput, e.to_string()));
        }
        let pool = Pool::new(config.threads);
        let selector = config.selector.build();
        let clock = config.clock;
        let faults = config.faults;
        let shards = config.shards.max(1);

        let opens = Mutex::new(BTreeMap::new());
        let last_active = Mutex::new(BTreeMap::new());
        let mut sched = config
            .budget_mode
            .is_global()
            .then(|| SchedState::new(config.global_budget));
        let (registry, durable) = match config.durability {
            None => (
                ShardedRegistry::new(config.seed, config.defaults, pool, shards),
                None,
            ),
            Some(durability) => {
                let recovery = recover(&durability.dir)?;
                // The snapshot's ledger and admission marks seed the
                // scheduler; replay below recharges journalled
                // admissions on top. (A per-session boot ignores any
                // scheduler state an earlier global incarnation left.)
                if let Some(state) = sched.as_mut() {
                    if let Some(snap) = recovery.snapshot.as_ref().and_then(|s| s.sched.as_ref()) {
                        *state = SchedState::from_snapshot(snap, config.global_budget);
                    }
                }
                let registry = Self::recovered_registry(
                    &recovery,
                    config.seed,
                    config.defaults,
                    pool,
                    shards,
                    selector.as_ref(),
                    &opens,
                    &last_active,
                    &mut sched,
                )?;
                let mut durable = Durability::open(durability, faults.clone(), &recovery)?;
                // Compact: one fresh snapshot covering everything just
                // recovered, so the journal restarts empty and a torn
                // tail (already dropped by recovery) is truncated away.
                let snapshot = DurableSnapshot {
                    applied_seq: durable.last_seq(),
                    registry: registry.snapshot(),
                    opens: ledger_snapshot(&opens),
                    sched: sched.as_ref().map(SchedState::snapshot),
                };
                durable.snapshot_now(&snapshot)?;
                (registry, Some(durable))
            }
        };

        // The gain queue is never persisted: rebuild it wholesale from
        // the recovered registry (a pure function of session state, so
        // identical across shard counts and recovery paths).
        if let Some(state) = sched.as_mut() {
            for session in registry.ids() {
                let gain = registry
                    .with_session(session, SchedState::session_gain)
                    .ok()
                    .flatten();
                state.refresh(session, gain);
            }
        }

        // Recovery has no record of wall time; every recovered session's
        // TTL restarts at boot.
        let now = clock.now_ms();
        {
            let mut last_active = lease(&last_active);
            last_active.clear();
            for session in registry.ids() {
                last_active.insert(session, now);
            }
        }

        Ok(Service {
            registry: RwLock::new(registry),
            durable: Mutex::new(durable),
            opens,
            last_active,
            order: Mutex::new(()),
            shard_order: (0..shards).map(|_| Mutex::new(())).collect(),
            sched: Mutex::new(sched),
            budget_mode: config.budget_mode,
            selector,
            method: config.method,
            threads: config.threads,
            shards,
            snapshot_dir: config.snapshot_dir,
            clock,
            session_ttl_ms: config.session_ttl_ms,
            read_deadline_ms: config.read_deadline_ms,
            max_line_bytes: config.max_line_bytes,
            faults,
            shutdown: AtomicBool::new(false),
        })
    }

    /// Rebuilds in-memory state from a recovery: the snapshot's registry
    /// (or a fresh one) with every post-snapshot journal record replayed
    /// through the same apply path live dispatch uses. Replay ignores
    /// per-effect errors: an effect that failed to apply before the crash
    /// fails identically now. In global mode, each replayed `Schedule`
    /// that reopens a round recharges the ledger and re-records its
    /// admission mark, so the ledger is exact without ever being
    /// journalled itself.
    #[allow(clippy::too_many_arguments)]
    fn recovered_registry(
        recovery: &Recovery,
        seed: u64,
        defaults: RoundConfig,
        pool: Pool,
        shards: usize,
        selector: &dyn TaskSelector,
        opens: &Mutex<BTreeMap<u64, Vec<OpenedSession>>>,
        last_active: &Mutex<BTreeMap<u64, Tick>>,
        sched: &mut Option<SchedState>,
    ) -> io::Result<ShardedRegistry> {
        let registry = match &recovery.snapshot {
            Some(snapshot) => {
                let mut ledger = lease(opens);
                for open in &snapshot.opens {
                    ledger.insert(open.request, open.sessions.clone());
                }
                drop(ledger);
                ShardedRegistry::from_snapshot(snapshot.registry.clone(), pool, shards).map_err(
                    |e| {
                        io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!("durable snapshot failed validation: {e}"),
                        )
                    },
                )?
            }
            None => ShardedRegistry::new(seed, defaults, pool, shards),
        };
        for record in &recovery.replay {
            let result = apply_effect(selector, &registry, opens, last_active, &record.effect, 0);
            if let Effect::Schedule {
                request, session, ..
            } = &record.effect
            {
                if let (Some(state), Ok(EffectOutcome::Selected(SelectOutcome::Round(round)))) =
                    (sched.as_mut(), &result)
                {
                    // A grant shrunk across restarts can make an honest
                    // replay overcharge; pin to exhausted rather than
                    // refuse the boot.
                    if state.ledger.charge(round.tasks.len() as u64).is_err() {
                        state.ledger.spent = state.ledger.budget;
                    }
                    state.mark(*request, *session);
                }
            }
        }
        Ok(registry)
    }

    /// Resolves a client-supplied snapshot path under the confinement
    /// policy (see [`ServiceConfig::snapshot_dir`]).
    fn resolve_snapshot_path(&self, path: &str) -> Result<std::path::PathBuf, String> {
        use std::path::Component;
        let Some(dir) = &self.snapshot_dir else {
            return Ok(std::path::PathBuf::from(path));
        };
        let p = std::path::Path::new(path);
        let mut components = p.components();
        let bare_file =
            matches!(components.next(), Some(Component::Normal(_))) && components.next().is_none();
        if !bare_file {
            return Err(format!(
                "snapshot path {path:?} must be a bare file name \
                 (snapshots are confined to the daemon's snapshot dir)"
            ));
        }
        Ok(dir.join(p))
    }

    /// Whether a `Shutdown` request has been served.
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Dispatches one request. Every failure maps to [`Response::Error`];
    /// the connection stays usable. (Injected crashes also surface as
    /// errors here — harnesses that must observe them use
    /// [`Service::try_handle`].)
    pub fn handle(&self, request: Request) -> Response {
        match self.try_handle(request) {
            Ok(response) => response,
            Err(crash) => Response::Error {
                message: crash.to_string(),
            },
        }
    }

    /// Dispatches one request, letting an injected [`SimulatedCrash`]
    /// unwind to the caller — the chaos harness treats that as process
    /// death and rebuilds the service from its durability directory.
    pub fn try_handle(&self, request: Request) -> Result<Response, SimulatedCrash> {
        match self.dispatch(request) {
            Ok(response) => Ok(response),
            Err(Fail::Msg(message)) => Ok(Response::Error { message }),
            Err(Fail::Crash(crash)) => Err(crash),
        }
    }

    /// Parses one wire line, dispatches it, encodes the response line.
    pub fn handle_line(&self, line: &str) -> String {
        let (framing, decoded) = crate::protocol::decode_framed(line);
        let response = match decoded {
            Ok(request) => self.handle(request),
            Err(refusal) => refusal,
        };
        crate::protocol::encode_framed(framing, &response)
    }

    /// The shard-order stripe owning a session id. Stripe count always
    /// equals the registry's shard count (restores preserve it).
    fn shard_lock(&self, session: u64) -> &Mutex<()> {
        &self.shard_order[(session % self.shard_order.len() as u64) as usize]
    }

    /// The scheduler's durable form, for snapshot assembly (`None` in
    /// per-session mode, keeping those snapshots byte-identical to the
    /// pre-scheduler format).
    fn sched_snapshot(&self) -> Option<SchedSnapshot> {
        lease(&self.sched).as_ref().map(SchedState::snapshot)
    }

    /// Recomputes one session's marginal gain against the registry and
    /// applies it to the gain queue. No-op in per-session mode. The gain
    /// is computed *before* the scheduler lock is taken (leaf rule).
    fn refresh_gain(&self, registry: &ShardedRegistry, session: u64) {
        if !self.budget_mode.is_global() {
            return;
        }
        let gain = registry
            .with_session(session, SchedState::session_gain)
            .ok()
            .flatten();
        if let Some(sched) = lease(&self.sched).as_mut() {
            sched.refresh(session, gain);
        }
    }

    /// Drops sessions from the gain queue (evictions). No-op in
    /// per-session mode.
    fn unqueue_sessions(&self, sessions: &[u64]) {
        if let Some(sched) = lease(&self.sched).as_mut() {
            for &session in sessions {
                sched.queue.remove(session);
            }
        }
    }

    /// The write path: journal → injected-fault window → apply. The caller
    /// holds the effect's serialisation locks (`order` or a
    /// `shard_order` stripe) plus the shared registry guard across this
    /// call, then *releases them* before acting on the returned
    /// `snapshot_due` flag via [`Service::write_auto_snapshot`] — the
    /// snapshot needs the registry exclusively.
    fn commit(
        &self,
        registry: &ShardedRegistry,
        effect: Effect,
    ) -> (Result<EffectOutcome, Fail>, bool) {
        let now = self.clock.now_ms();
        {
            let mut durable = lease(&self.durable);
            if let Some(durable) = durable.as_mut() {
                if let Err(e) = durable.journal(effect.clone()) {
                    return (Err(io_fail(e, "append to the journal")), false);
                }
            }
        }
        if let Err(crash) = self.faults.crash_if_scheduled(FaultPoint::EffectApply) {
            return (Err(Fail::Crash(crash)), false);
        }
        let outcome = apply_effect(
            self.selector.as_ref(),
            registry,
            &self.opens,
            &self.last_active,
            &effect,
            now,
        )
        .map_err(|e| Fail::Msg(e.to_string()));
        // The cadence counts journalled effects whether or not the apply
        // succeeded — both are in the journal, both replay.
        let due = {
            let mut durable = lease(&self.durable);
            durable.as_mut().is_some_and(Durability::effect_applied)
        };
        (outcome, due)
    }

    /// Writes the auto-snapshot the cadence flagged as due. Takes the
    /// registry exclusively, so every journalled effect is applied and
    /// `applied_seq` is exact. Runs with *no other lock held* by the
    /// caller.
    fn write_auto_snapshot(&self) -> Result<(), Fail> {
        let registry = lease_write(&self.registry);
        let mut durable = lease(&self.durable);
        let Some(durable) = durable.as_mut() else {
            return Ok(());
        };
        let snapshot = DurableSnapshot {
            applied_seq: durable.last_seq(),
            registry: registry.snapshot(),
            opens: ledger_snapshot(&self.opens),
            sched: self.sched_snapshot(),
        };
        durable
            .snapshot_now(&snapshot)
            .map_err(|e| io_fail(e, "write the auto-snapshot"))
    }

    /// Resolves a finished commit: the deferred cadence snapshot first
    /// (its injected crashes must unwind exactly where the single-lock
    /// daemon crashed), then the effect's own outcome.
    fn finish_commit(
        &self,
        outcome: Result<EffectOutcome, Fail>,
        due: bool,
    ) -> Result<EffectOutcome, Fail> {
        if due {
            self.write_auto_snapshot()?;
        }
        outcome
    }

    /// Forces batched journal appends to disk. The group-commit hook: a
    /// transport running the durability layer with `group_commit` on
    /// calls this once per ready-batch — one fsync covers every shard's
    /// pending appends — before flushing the batch's responses.
    pub fn flush_wal(&self) -> io::Result<()> {
        match lease(&self.durable).as_mut() {
            Some(durable) => durable.sync(),
            None => Ok(()),
        }
    }

    /// Evicts sessions idle past the TTL, journalling the eviction as an
    /// explicit effect so replay never consults the clock.
    fn sweep_ttl(&self) -> Result<(), Fail> {
        let Some(ttl) = self.session_ttl_ms else {
            return Ok(());
        };
        let now = self.clock.now_ms();
        // Expiry is decided under `order` so a sweep and an `Open` agree
        // on journal order; a concurrently *touched* session can still
        // lose the race and be swept — the journalled Evict keeps replay
        // deterministic either way.
        let order = lease(&self.order);
        let expired: Vec<u64> = lease(&self.last_active)
            .iter()
            .filter(|&(_, &touched)| now.saturating_sub(touched) > ttl)
            .map(|(&session, _)| session)
            .collect();
        if expired.is_empty() {
            return Ok(());
        }
        let (outcome, due) = {
            let registry = lease_read(&self.registry);
            self.commit(
                &registry,
                Effect::Evict {
                    sessions: expired.clone(),
                },
            )
        };
        self.unqueue_sessions(&expired);
        drop(order);
        self.finish_commit(outcome, due)?;
        Ok(())
    }

    /// Builds the client payload for a selection outcome (shared by
    /// `Select`, global-mode admission and `Schedule`). Called with the
    /// session's stripe still held so the exhausted payload reflects
    /// this very selection.
    fn select_payload(
        &self,
        registry: &ShardedRegistry,
        session: u64,
        outcome: Result<EffectOutcome, Fail>,
    ) -> Result<Response, Fail> {
        match outcome? {
            EffectOutcome::Selected(SelectOutcome::Round(round)) => Ok(Response::Round {
                session,
                round: round.round,
                tasks: round.tasks,
            }),
            EffectOutcome::Selected(SelectOutcome::Exhausted) => {
                let (rounds, spent) = registry
                    .with_session(session, |s| (s.rounds(), s.spent()))
                    .map_err(|e| Fail::Msg(e.to_string()))?;
                Ok(Response::Exhausted {
                    session,
                    rounds,
                    spent,
                })
            }
            _ => unreachable!("select applies to Selected"),
        }
    }

    /// Applies a completed admission to the scheduler: a `Round` charges
    /// its tasks against the shared ledger, dequeues the session (it is
    /// busy until the round absorbs) and records the idempotency mark.
    /// The charge cannot fail — admission capped the round by the budget
    /// remaining, and `order` was held from cap to charge.
    fn settle_admission(&self, session: u64, token: Option<u64>, payload: &Response) {
        let mut sched = lease(&self.sched);
        let Some(sched) = sched.as_mut() else { return };
        if let Response::Round { tasks, .. } = payload {
            sched
                .ledger
                .charge(tasks.len() as u64)
                .expect("admission capped the round by the remaining budget");
            sched.queue.remove(session);
            sched.mark(token, session);
        }
    }

    /// Global-mode `Select`: idempotent re-reads and exhausted polls stay
    /// pure reads exactly as in per-session mode, and a selection that
    /// would spend nothing (flipping an empty session to exhausted) is
    /// granted freely — but a selection that would *open a round* must be
    /// admitted: it is granted only when the session is the gain queue's
    /// current best, journalled as a `Schedule` effect capped and charged
    /// against the shared ledger. Anything else gets
    /// [`Response::Deferred`] naming the scheduler's preferred session.
    fn select_global(&self, session: u64) -> Result<Response, Fail> {
        let err = |e: CoreError| Fail::Msg(e.to_string());
        let order = lease(&self.order);
        let (payload, due) = {
            let registry = lease_read(&self.registry);
            let _shard = lease(self.shard_lock(session));
            let (open_round, exhausted, left) = registry
                .with_session(session, |s| {
                    (s.has_open_round(), s.is_exhausted(), s.remaining())
                })
                .map_err(err)?;
            if open_round || exhausted {
                let now = self.clock.now_ms();
                let outcome = apply_effect(
                    self.selector.as_ref(),
                    &registry,
                    &self.opens,
                    &self.last_active,
                    &Effect::Select { session },
                    now,
                )
                .map_err(err);
                (self.select_payload(&registry, session, outcome), false)
            } else if left == 0 {
                // Flips to exhausted without opening a round: spends
                // nothing, so no admission contest — but it mutates, so
                // it journals like any per-session select.
                let (outcome, due) = self.commit(&registry, Effect::Select { session });
                (self.select_payload(&registry, session, outcome), due)
            } else {
                let admission = {
                    let sched = lease(&self.sched);
                    let sched = sched.as_ref().expect("global mode has scheduler state");
                    if sched.ledger.is_exhausted() {
                        Err(None)
                    } else {
                        match sched.queue.peek() {
                            Some(top) if top.session == session => Ok(sched.ledger.remaining()),
                            Some(top) => Err(Some(top.session)),
                            None => Err(None),
                        }
                    }
                };
                match admission {
                    Err(preferred) => (Ok(Response::Deferred { session, preferred }), false),
                    Ok(cap) => {
                        let (outcome, due) = self.commit(
                            &registry,
                            Effect::Schedule {
                                request: None,
                                session,
                                cap: cap as usize,
                            },
                        );
                        let payload = self.select_payload(&registry, session, outcome);
                        if let Ok(p) = &payload {
                            self.settle_admission(session, None, p);
                        }
                        (payload, due)
                    }
                }
            }
        };
        drop(order);
        if due {
            self.write_auto_snapshot()?;
        }
        payload
    }

    /// `Schedule` dispatch (global mode only): admit the gain queue's
    /// best schedulable session, cap its round by the shared budget
    /// remaining, charge what it opened. Stale entries — sessions that
    /// became busy, exhausted or evicted since their gain was computed —
    /// are pruned and the scan continues, so one call always lands on
    /// live work or an honest [`Response::NoWork`]. A retried
    /// idempotency token re-reads the original admission (a pure read)
    /// instead of admitting and charging twice.
    fn schedule_next(&self, token: Option<u64>) -> Result<Response, Fail> {
        let err = |e: CoreError| Fail::Msg(e.to_string());
        if !self.budget_mode.is_global() {
            return Err(Fail::Msg(
                "Schedule requires --budget-mode global (this daemon runs per-session budgets)"
                    .to_string(),
            ));
        }
        let order = lease(&self.order);
        if let Some(token) = token {
            let marked = lease(&self.sched)
                .as_ref()
                .and_then(|s| s.scheduled.get(&token).copied());
            if let Some(session) = marked {
                let registry = lease_read(&self.registry);
                let open_round = registry
                    .with_session(session, |s| s.has_open_round())
                    .map_err(err)?;
                return if open_round {
                    let now = self.clock.now_ms();
                    let outcome = apply_effect(
                        self.selector.as_ref(),
                        &registry,
                        &self.opens,
                        &self.last_active,
                        &Effect::Select { session },
                        now,
                    )
                    .map_err(err);
                    self.select_payload(&registry, session, outcome)
                } else {
                    // The admitted round has since been fully absorbed;
                    // an empty task list says nothing is owed.
                    let round = registry
                        .with_session(session, |s| s.rounds())
                        .map_err(err)?;
                    Ok(Response::Round {
                        session,
                        round,
                        tasks: Vec::new(),
                    })
                };
            }
        }
        let mut any_due = false;
        let payload = loop {
            // Pick under the scheduler lock, verify against the registry
            // after releasing it (the scheduler mutex is a strict leaf).
            let candidate = {
                let sched = lease(&self.sched);
                let sched = sched.as_ref().expect("global mode has scheduler state");
                if sched.ledger.is_exhausted() {
                    break Ok(Response::NoWork { remaining: 0 });
                }
                match sched.queue.peek() {
                    None => {
                        break Ok(Response::NoWork {
                            remaining: sched.ledger.remaining(),
                        })
                    }
                    Some(entry) => (entry.session, sched.ledger.remaining()),
                }
            };
            let (session, cap) = candidate;
            let registry = lease_read(&self.registry);
            let shard = lease(self.shard_lock(session));
            let schedulable = registry
                .with_session(session, |s| {
                    !s.has_open_round() && !s.is_exhausted() && s.remaining() > 0
                })
                .unwrap_or(false);
            if !schedulable {
                drop(shard);
                drop(registry);
                self.unqueue_sessions(&[session]);
                continue;
            }
            let (outcome, due) = self.commit(
                &registry,
                Effect::Schedule {
                    request: token,
                    session,
                    cap: cap as usize,
                },
            );
            any_due |= due;
            match self.select_payload(&registry, session, outcome) {
                Ok(Response::Exhausted { .. }) => {
                    // The selector stopped without opening a round:
                    // nothing charged; drop the session and rescan.
                    drop(shard);
                    drop(registry);
                    self.unqueue_sessions(&[session]);
                    continue;
                }
                Ok(p) => {
                    self.settle_admission(session, token, &p);
                    break Ok(p);
                }
                Err(fail) => break Err(fail),
            }
        };
        drop(order);
        if any_due {
            self.write_auto_snapshot()?;
        }
        payload
    }

    fn dispatch(&self, request: Request) -> Result<Response, Fail> {
        let err = |e: CoreError| Fail::Msg(e.to_string());
        // Version negotiation touches no session state — answer before
        // TTL sweeps or registry locks.
        if let Request::Hello { v } = request {
            return Ok(if crate::protocol::version_supported(v) {
                Response::Welcome {
                    v,
                    min: crate::protocol::WIRE_VERSION_MIN,
                    max: crate::protocol::WIRE_VERSION_MAX,
                }
            } else {
                crate::protocol::unsupported_version(v)
            });
        }
        // The client-directed snapshot export serialises and writes
        // *outside* the registry guard so a large export never stalls
        // other connections' traffic — the guard is held only for the
        // clone.
        if let Request::Snapshot { path } = request {
            let resolved = self.resolve_snapshot_path(&path).map_err(Fail::Msg)?;
            self.sweep_ttl()?;
            let snap = lease_read(&self.registry).snapshot();
            let sessions = snap.sessions.len() as u64;
            snapshot::save(&snap, &resolved)
                .map_err(|e| Fail::Msg(format!("cannot write snapshot {path}: {e}")))?;
            return Ok(Response::Snapshotted { path, sessions });
        }
        if let Request::Restore { path } = request {
            let resolved = self.resolve_snapshot_path(&path).map_err(Fail::Msg)?;
            let snap = snapshot::load(&resolved)
                .map_err(|e| Fail::Msg(format!("cannot read snapshot {path}: {e}")))?;
            // Exclusive: a restore replaces the whole registry, and no
            // commit may straddle the swap.
            let mut registry = lease_write(&self.registry);
            let pool = registry.pool().clone();
            let restored = ShardedRegistry::from_snapshot(snap, pool, self.shards).map_err(err)?;
            let sessions = restored.len() as u64;
            *registry = restored;
            // The ledger described sessions that no longer exist.
            lease(&self.opens).clear();
            let now = self.clock.now_ms();
            *lease(&self.last_active) = registry
                .ids()
                .into_iter()
                .map(|session| (session, now))
                .collect();
            // Rebuild the scheduler against the restored registry. The
            // exported snapshot format is registry-only, so the ledger
            // is *reconstructed*: every restored judgment — spent or
            // committed to a still-open round — was charged at
            // admission, hence counts as spent here. Admission marks
            // described rounds that no longer exist and are dropped.
            if self.budget_mode.is_global() {
                let ids = registry.ids();
                let mut spent: u64 = 0;
                let mut gains = Vec::with_capacity(ids.len());
                for session in ids {
                    spent += registry
                        .with_session(session, |s| (s.spent() + s.open_round_tasks()) as u64)
                        .unwrap_or(0);
                    gains.push((
                        session,
                        registry
                            .with_session(session, SchedState::session_gain)
                            .ok()
                            .flatten(),
                    ));
                }
                if let Some(sched) = lease(&self.sched).as_mut() {
                    let budget = sched.ledger.budget;
                    sched.ledger = BudgetLedger {
                        budget,
                        spent: spent.min(budget),
                    };
                    sched.scheduled.clear();
                    sched.queue = GainQueue::new();
                    for (session, gain) in gains {
                        sched.refresh(session, gain);
                    }
                }
            }
            // Durability barrier: the restore replaces history, so the
            // restored state becomes the new recovery base at once.
            let mut durable = lease(&self.durable);
            if let Some(durable) = durable.as_mut() {
                let snapshot = DurableSnapshot {
                    applied_seq: durable.last_seq(),
                    registry: registry.snapshot(),
                    opens: Vec::new(),
                    sched: self.sched_snapshot(),
                };
                durable
                    .snapshot_now(&snapshot)
                    .map_err(|e| io_fail(e, "persist the restored state"))?;
            }
            return Ok(Response::Restored { path, sessions });
        }

        self.sweep_ttl()?;
        match request {
            Request::Open {
                request,
                entities,
                k,
                budget,
                pc,
            } => {
                // Pre-validate so malformed opens are rejected before the
                // journal sees them. A spec naming a fusion method must
                // name a registered one (absent = the daemon's default).
                let fusion = crowdfusion_fusion::StrategyRegistry::standard();
                for spec in &entities {
                    spec.validate().map_err(err)?;
                    if let Some(method) = &spec.method {
                        fusion.build(method).map_err(|e| Fail::Msg(e.to_string()))?;
                    }
                }
                let order = lease(&self.order);
                // At-least-once: a retried token returns the recorded
                // payload, opening nothing. Checked under `order` so two
                // racing retries cannot both open.
                if let Some(token) = request {
                    if let Some(sessions) = lease(&self.opens).get(&token) {
                        return Ok(Response::Opened {
                            sessions: sessions.clone(),
                        });
                    }
                }
                let (outcome, due) = {
                    let registry = lease_read(&self.registry);
                    if k.is_some() || budget.is_some() || pc.is_some() {
                        let defaults = registry.defaults();
                        RoundConfig::new(
                            k.unwrap_or(defaults.k),
                            budget.unwrap_or(defaults.budget),
                            pc.unwrap_or(defaults.pc_assumed),
                        )
                        .map_err(err)?;
                    }
                    self.commit(
                        &registry,
                        Effect::Open {
                            request,
                            entities,
                            k,
                            budget,
                            pc,
                        },
                    )
                };
                drop(order);
                match self.finish_commit(outcome, due)? {
                    EffectOutcome::Opened(sessions) => {
                        // Freshly opened sessions are idle with their
                        // whole budget: queue their gains.
                        if self.budget_mode.is_global() {
                            let registry = lease_read(&self.registry);
                            for opened in &sessions {
                                self.refresh_gain(&registry, opened.session);
                            }
                        }
                        Ok(Response::Opened { sessions })
                    }
                    _ => unreachable!("open applies to Opened"),
                }
            }
            Request::Select { session } => {
                if self.budget_mode.is_global() {
                    return self.select_global(session);
                }
                let (payload, due) = {
                    let registry = lease_read(&self.registry);
                    let _shard = lease(self.shard_lock(session));
                    // Journal only when selection will mutate (draw RNG,
                    // open a round, or flip to exhausted); re-reading an
                    // open round and polling an exhausted session are pure
                    // reads.
                    let mutates = registry
                        .with_session(session, |s| !s.has_open_round() && !s.is_exhausted())
                        .map_err(err)?;
                    let effect = Effect::Select { session };
                    let (outcome, due) = if mutates {
                        self.commit(&registry, effect)
                    } else {
                        let now = self.clock.now_ms();
                        let outcome = apply_effect(
                            self.selector.as_ref(),
                            &registry,
                            &self.opens,
                            &self.last_active,
                            &effect,
                            now,
                        )
                        .map_err(err);
                        (outcome, false)
                    };
                    // Build the response while the stripe is still held so
                    // the exhausted payload reflects this very selection.
                    let payload = match outcome {
                        Ok(EffectOutcome::Selected(SelectOutcome::Round(round))) => {
                            Ok(Response::Round {
                                session,
                                round: round.round,
                                tasks: round.tasks,
                            })
                        }
                        Ok(EffectOutcome::Selected(SelectOutcome::Exhausted)) => {
                            let (rounds, spent) = registry
                                .with_session(session, |s| (s.rounds(), s.spent()))
                                .map_err(err)?;
                            Ok(Response::Exhausted {
                                session,
                                rounds,
                                spent,
                            })
                        }
                        Ok(_) => unreachable!("select applies to Selected"),
                        Err(e) => Err(e),
                    };
                    (payload, due)
                };
                if due {
                    self.write_auto_snapshot()?;
                }
                payload
            }
            Request::Absorb { session, answers } => {
                let (outcome, due) = {
                    let registry = lease_read(&self.registry);
                    let shard = lease(self.shard_lock(session));
                    // The session must exist before the batch is
                    // journalled; in-batch errors (unknown ids, no open
                    // round) journal and fail identically on replay.
                    registry.with_session(session, |_| ()).map_err(err)?;
                    let result = self.commit(&registry, Effect::Absorb { session, answers });
                    drop(shard);
                    result
                };
                match self.finish_commit(outcome, due)? {
                    EffectOutcome::Absorbed(report) => {
                        // A closed round leaves the session idle with a
                        // fresh posterior: recompute its place in the
                        // gain queue (no-op in per-session mode).
                        if report.closed.is_some() && self.budget_mode.is_global() {
                            let registry = lease_read(&self.registry);
                            self.refresh_gain(&registry, session);
                        }
                        Ok(Response::Absorbed {
                            session,
                            accepted: report.accepted,
                            duplicates: report.duplicates,
                            pending: report.pending,
                            closed: report.closed,
                        })
                    }
                    _ => unreachable!("absorb applies to Absorbed"),
                }
            }
            Request::Hello { .. } | Request::Snapshot { .. } | Request::Restore { .. } => {
                unreachable!("hello and snapshot verbs are handled before the main dispatch")
            }
            Request::Status { session } => {
                let registry = lease_read(&self.registry);
                let response = registry
                    .with_session(session, |state| Response::Status {
                        session,
                        name: state.name().to_string(),
                        facts: state.num_facts(),
                        rounds: state.rounds(),
                        spent: state.spent(),
                        remaining: state.remaining(),
                        pending: state.pending_answers(),
                        exhausted: state.is_exhausted(),
                        utility: state.utility(),
                        entropy: state.entropy(),
                    })
                    .map_err(err)?;
                // A status poll counts as activity: watching a session
                // keeps it alive.
                let now = self.clock.now_ms();
                lease(&self.last_active).insert(session, now);
                Ok(response)
            }
            Request::Schedule { request } => self.schedule_next(request),
            Request::BudgetStatus => {
                // Copy out of the scheduler mutex before touching the
                // registry — the scheduler is a leaf lock and must never
                // be held while acquiring anything else.
                let global = lease(&self.sched)
                    .as_ref()
                    .map(|s| (s.ledger, s.queue.peek()));
                match global {
                    Some((ledger, next)) => Ok(Response::Budget {
                        mode: BudgetMode::Global.name().to_string(),
                        budget: ledger.budget,
                        spent: ledger.spent,
                        remaining: ledger.remaining(),
                        next_session: next.as_ref().map(|e| e.session),
                        next_gain_bits: next.as_ref().map(|e| e.bits),
                    }),
                    None => {
                        // Per-session mode: report the aggregate of the
                        // independent session budgets.
                        let registry = lease_read(&self.registry);
                        let mut spent = 0u64;
                        let mut remaining = 0u64;
                        for session in registry.ids() {
                            if let Ok((s, r)) = registry.with_session(session, |st| {
                                (st.spent() as u64, st.remaining() as u64)
                            }) {
                                spent += s;
                                remaining += r;
                            }
                        }
                        Ok(Response::Budget {
                            mode: BudgetMode::PerSession.name().to_string(),
                            budget: spent + remaining,
                            spent,
                            remaining,
                            next_session: None,
                            next_gain_bits: None,
                        })
                    }
                }
            }
            Request::Metrics => Ok(Response::Metrics {
                metrics: lease_read(&self.registry).metrics(),
            }),
            Request::Trace => Ok(Response::Trace {
                trace: lease_read(&self.registry).trace(self.selector.name()),
            }),
            Request::Shutdown => {
                // Drain: open rounds and partial answers persist in a
                // final snapshot instead of dying with the process. A
                // *real* I/O failure here still shuts down — the journal
                // already holds everything the snapshot would (synced
                // below) — but an injected crash unwinds like any other.
                let registry = lease_write(&self.registry);
                let mut durable = lease(&self.durable);
                if let Some(durable) = durable.as_mut() {
                    let snapshot = DurableSnapshot {
                        applied_seq: durable.last_seq(),
                        registry: registry.snapshot(),
                        opens: ledger_snapshot(&self.opens),
                        sched: self.sched_snapshot(),
                    };
                    if let Err(e) = durable.snapshot_now(&snapshot) {
                        if let Some(crash) = as_simulated_crash(&e) {
                            return Err(Fail::Crash(crash));
                        }
                        let _ = durable.sync();
                        eprintln!(
                            "crowdfusion-serve: final snapshot failed ({e}); \
                             shutting down on the synced journal"
                        );
                    }
                }
                self.shutdown.store(true, Ordering::SeqCst);
                Ok(Response::Bye)
            }
        }
    }

    /// Worker-pool width (used to size pools for restored registries).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Registry shard (lock-stripe) count.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The daemon's default fusion-method name.
    pub fn method(&self) -> &str {
        &self.method
    }

    /// The per-connection read deadline, if one is configured.
    pub fn read_deadline_ms(&self) -> Option<u64> {
        self.read_deadline_ms
    }

    /// The daemon's time source. Transports stamp connection activity
    /// through it so read deadlines stay off the raw wall clock (tests
    /// drive a manual clock).
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// The protocol line-length cap.
    pub fn max_line_bytes(&self) -> usize {
        self.max_line_bytes
    }

    /// The fault schedule (transports consult the connection points).
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.faults
    }
}

/// Clones the idempotency ledger into its snapshot form.
fn ledger_snapshot(opens: &Mutex<BTreeMap<u64, Vec<OpenedSession>>>) -> Vec<CompletedOpen> {
    lease(opens)
        .iter()
        .map(|(&request, sessions)| CompletedOpen {
            request,
            sessions: sessions.clone(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::WireAnswer as WA;
    use crowdfusion_core::session::{EntitySpec, PublishedTask};
    use std::sync::atomic::AtomicU64;

    static NEXT_DIR: AtomicU64 = AtomicU64::new(0);

    fn temp_dir(label: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "crowdfusion-service-{label}-{}-{}",
            std::process::id(),
            NEXT_DIR.fetch_add(1, Ordering::SeqCst)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn base_config() -> ServiceConfig {
        ServiceConfig::new(
            7,
            RoundConfig::new(2, 6, 0.8).unwrap(),
            2,
            SelectorChoice::Greedy,
        )
    }

    fn service() -> Service {
        Service::new(base_config()).unwrap()
    }

    fn spec() -> EntitySpec {
        EntitySpec::simple("b", vec![0.5, 0.6, 0.7], vec![true, false, true])
    }

    fn open_one(svc: &Service, request: Option<u64>) -> Vec<OpenedSession> {
        let Response::Opened { sessions } = svc.handle(Request::Open {
            request,
            entities: vec![spec()],
            k: None,
            budget: None,
            pc: None,
        }) else {
            panic!("open failed");
        };
        sessions
    }

    #[test]
    fn selector_choice_parses_the_cli_matrix() {
        assert_eq!(
            SelectorChoice::parse("greedy").unwrap(),
            SelectorChoice::Greedy
        );
        assert_eq!(
            SelectorChoice::parse("greedy-pre").unwrap(),
            SelectorChoice::GreedyPre
        );
        assert_eq!(
            SelectorChoice::parse("random").unwrap(),
            SelectorChoice::Random
        );
        assert!(SelectorChoice::parse("oracle").is_err());
    }

    #[test]
    fn open_select_absorb_cycle_end_to_end() {
        let svc = service();
        let sessions = open_one(&svc, None);
        let id = sessions[0].session;
        let Response::Round { tasks, round, .. } = svc.handle(Request::Select { session: id })
        else {
            panic!("select failed");
        };
        assert_eq!(round, 1);
        assert_eq!(tasks.len(), 2);
        let answers: Vec<WA> = tasks
            .iter()
            .map(|t| WA {
                task: t.id,
                value: true,
            })
            .collect();
        let Response::Absorbed {
            accepted,
            pending,
            closed,
            ..
        } = svc.handle(Request::Absorb {
            session: id,
            answers,
        })
        else {
            panic!("absorb failed");
        };
        assert_eq!(accepted, 2);
        assert_eq!(pending, 0);
        assert!(closed.is_some());
        let Response::Status { rounds, spent, .. } = svc.handle(Request::Status { session: id })
        else {
            panic!("status failed");
        };
        assert_eq!((rounds, spent), (1, 2));
        let Response::Metrics { metrics } = svc.handle(Request::Metrics) else {
            panic!("metrics failed");
        };
        assert_eq!(metrics.judgments, 2);
    }

    #[test]
    fn method_names_are_validated_at_boot_and_open() {
        // Boot: an unknown --method fails construction with the registry's
        // full listing, before any client connects.
        let mut config = base_config();
        config.method = "lda".to_string();
        let Err(err) = Service::new(config) else {
            panic!("unknown method must fail the boot");
        };
        assert!(err.to_string().contains("unknown fusion method"));
        assert!(err.to_string().contains("modified-crh"));

        // A non-default registered method boots and is visible.
        let mut config = base_config();
        config.method = "truthfinder".to_string();
        let svc = Service::new(config).unwrap();
        assert_eq!(svc.method(), "truthfinder");

        // Open: specs naming a registered method pass; unknown names are
        // rejected before the journal would see them.
        let mut tagged = spec();
        tagged.method = Some("per-attribute".to_string());
        let Response::Opened { sessions } = svc.handle(Request::Open {
            request: None,
            entities: vec![tagged],
            k: None,
            budget: None,
            pc: None,
        }) else {
            panic!("tagged open failed");
        };
        assert_eq!(sessions.len(), 1);
        let mut bogus = spec();
        bogus.method = Some("lda".to_string());
        let response = svc.handle(Request::Open {
            request: None,
            entities: vec![bogus],
            k: None,
            budget: None,
            pc: None,
        });
        assert!(
            matches!(response, Response::Error { ref message } if message.contains("unknown fusion method")),
            "{response:?}"
        );
    }

    #[test]
    fn errors_are_responses_not_disconnects() {
        let svc = service();
        assert!(matches!(
            svc.handle(Request::Select { session: 42 }),
            Response::Error { .. }
        ));
        assert!(matches!(
            svc.handle(Request::Open {
                request: None,
                entities: vec![spec()],
                k: Some(0),
                budget: None,
                pc: None,
            }),
            Response::Error { .. }
        ));
        let reply = svc.handle_line("{garbage");
        assert!(reply.contains("Error"));
        // Still serving afterwards.
        assert!(matches!(
            svc.handle(Request::Metrics),
            Response::Metrics { .. }
        ));
    }

    #[test]
    fn retried_open_token_replays_the_original_response() {
        let svc = service();
        let first = open_one(&svc, Some(11));
        let retry = open_one(&svc, Some(11));
        assert_eq!(first, retry, "token retry must not open new sessions");
        let Response::Metrics { metrics } = svc.handle(Request::Metrics) else {
            panic!("metrics failed");
        };
        assert_eq!(metrics.sessions, 1);
        // A different token (and no token at all) opens fresh sessions.
        let other = open_one(&svc, Some(12));
        assert_ne!(first[0].session, other[0].session);
        open_one(&svc, None);
        let Response::Metrics { metrics } = svc.handle(Request::Metrics) else {
            panic!("metrics failed");
        };
        assert_eq!(metrics.sessions, 3);
    }

    #[test]
    fn absorb_routes_in_batch_duplicates_through_crowd_dedup() {
        // Regression for the ingest boundary: a batch that repeats a task
        // id keeps the FIRST occurrence (even when values conflict) and
        // counts the rest as duplicates — exactly dedup_answers' rule.
        let svc = service();
        let id = open_one(&svc, None)[0].session;
        let Response::Round { tasks, .. } = svc.handle(Request::Select { session: id }) else {
            panic!("select failed");
        };
        let t0 = tasks[0].id;
        let batch = vec![
            WA {
                task: t0,
                value: true,
            },
            WA {
                task: t0,
                value: false, // conflicting redelivery, dropped
            },
            WA {
                task: t0,
                value: true, // agreeing redelivery, also dropped
            },
        ];
        let Response::Absorbed {
            accepted,
            duplicates,
            pending,
            ..
        } = svc.handle(Request::Absorb {
            session: id,
            answers: batch,
        })
        else {
            panic!("absorb failed");
        };
        assert_eq!((accepted, duplicates, pending), (1, 2, 1));
        // Re-delivering the whole original answer across batches is also
        // one duplicate per repeat (session-level dedup).
        let Response::Absorbed {
            accepted,
            duplicates,
            ..
        } = svc.handle(Request::Absorb {
            session: id,
            answers: vec![WA {
                task: t0,
                value: false,
            }],
        })
        else {
            panic!("absorb failed");
        };
        assert_eq!((accepted, duplicates), (0, 1));
    }

    #[test]
    fn idle_sessions_are_evicted_on_the_manual_clock() {
        let clock = Clock::manual();
        let mut config = base_config();
        config.clock = clock.clone();
        config.session_ttl_ms = Some(1_000);
        let svc = Service::new(config).unwrap();
        let id = open_one(&svc, None)[0].session;
        // Touch within the TTL: stays alive.
        clock.advance(900);
        assert!(matches!(
            svc.handle(Request::Status { session: id }),
            Response::Status { .. }
        ));
        clock.advance(999);
        assert!(matches!(
            svc.handle(Request::Status { session: id }),
            Response::Status { .. }
        ));
        // Idle past the TTL: the next request sweeps it away.
        clock.advance(1_001);
        assert!(matches!(
            svc.handle(Request::Status { session: id }),
            Response::Error { .. }
        ));
        let Response::Metrics { metrics } = svc.handle(Request::Metrics) else {
            panic!("metrics failed");
        };
        assert_eq!(metrics.sessions, 0);
    }

    #[test]
    fn durable_service_recovers_sessions_across_restart() {
        let dir = temp_dir("restart");
        let mut config = base_config();
        config.durability = Some(DurabilityConfig::new(&dir));
        let svc = Service::new(config.clone()).unwrap();
        let id = open_one(&svc, Some(5))[0].session;
        let Response::Round { tasks, .. } = svc.handle(Request::Select { session: id }) else {
            panic!("select failed");
        };
        // Absorb one of two answers, then DROP the service: no shutdown,
        // no drain — the journal alone must carry the partial round.
        let Response::Absorbed { pending, .. } = svc.handle(Request::Absorb {
            session: id,
            answers: vec![WA {
                task: tasks[0].id,
                value: true,
            }],
        }) else {
            panic!("absorb failed");
        };
        assert_eq!(pending, 1);
        drop(svc);

        let revived = Service::new(config).unwrap();
        let Response::Status { pending, spent, .. } =
            revived.handle(Request::Status { session: id })
        else {
            panic!("status failed");
        };
        assert_eq!((pending, spent), (1, 0), "partial round must survive");
        // The idempotency ledger also survived.
        let retry = open_one(&revived, Some(5));
        assert_eq!(retry[0].session, id);
        let Response::Metrics { metrics } = revived.handle(Request::Metrics) else {
            panic!("metrics failed");
        };
        assert_eq!(metrics.sessions, 1);
    }

    #[test]
    fn shutdown_drains_to_a_final_snapshot() {
        let dir = temp_dir("drain");
        let mut config = base_config();
        config.durability = Some(DurabilityConfig::new(&dir));
        let svc = Service::new(config.clone()).unwrap();
        let id = open_one(&svc, None)[0].session;
        svc.handle(Request::Select { session: id });
        assert_eq!(svc.handle(Request::Shutdown), Response::Bye);
        assert!(svc.shutdown_requested());
        drop(svc);
        // The journal is empty (truncated by the final snapshot) and the
        // snapshot alone restores the open round.
        let recovered = crate::durable::recover(&dir).unwrap();
        assert!(recovered.replay.is_empty());
        assert!(recovered.snapshot.is_some());
        let revived = Service::new(config).unwrap();
        let Response::Status { pending, .. } = revived.handle(Request::Status { session: id })
        else {
            panic!("status failed");
        };
        assert_eq!(pending, 2, "open round drained into the snapshot");
    }

    #[test]
    fn snapshot_dir_confines_client_paths() {
        let dir = temp_dir("confine");
        let mut config = base_config();
        config.threads = 1;
        config.snapshot_dir = Some(dir.clone());
        let svc = Service::new(config.clone()).unwrap();
        // Traversal and absolute paths are rejected without touching disk.
        for bad in ["../escape.json", "/etc/hostname", "a/b.json", ""] {
            let response = svc.handle(Request::Snapshot {
                path: bad.to_string(),
            });
            assert!(
                matches!(response, Response::Error { ref message } if message.contains("bare file name")),
                "path {bad:?} gave {response:?}"
            );
        }
        // A bare file name lands inside the configured directory.
        assert!(matches!(
            svc.handle(Request::Snapshot {
                path: "ok.json".to_string(),
            }),
            Response::Snapshotted { .. }
        ));
        assert!(dir.join("ok.json").exists());
        assert!(matches!(
            svc.handle(Request::Restore {
                path: "ok.json".to_string(),
            }),
            Response::Restored { .. }
        ));
        std::fs::remove_file(dir.join("ok.json")).ok();
        // Unconfined daemons keep verbatim paths (trusted operators).
        config.snapshot_dir = None;
        let open = Service::new(config).unwrap();
        let path = dir.join("direct.json").to_string_lossy().into_owned();
        assert!(matches!(
            open.handle(Request::Snapshot { path: path.clone() }),
            Response::Snapshotted { .. }
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn shutdown_sets_the_flag() {
        let svc = service();
        assert!(!svc.shutdown_requested());
        assert_eq!(svc.handle(Request::Shutdown), Response::Bye);
        assert!(svc.shutdown_requested());
    }

    #[test]
    fn shard_count_is_invisible_in_traces_and_snapshots() {
        // The same workload at 1, 2 and 8 shards produces byte-identical
        // traces, metrics and snapshots.
        let mut outputs = Vec::new();
        for shards in [1usize, 2, 8] {
            let mut config = base_config();
            config.shards = shards;
            let svc = Service::new(config).unwrap();
            for _ in 0..3 {
                let id = open_one(&svc, None)[0].session;
                let Response::Round { tasks, .. } = svc.handle(Request::Select { session: id })
                else {
                    panic!("select failed");
                };
                let answers: Vec<WA> = tasks
                    .iter()
                    .map(|t| WA {
                        task: t.id,
                        value: true,
                    })
                    .collect();
                svc.handle(Request::Absorb {
                    session: id,
                    answers,
                });
            }
            let trace = crate::protocol::encode(&svc.handle(Request::Trace));
            let metrics = crate::protocol::encode(&svc.handle(Request::Metrics));
            outputs.push((trace, metrics));
        }
        assert_eq!(outputs[0], outputs[1]);
        assert_eq!(outputs[0], outputs[2]);
    }

    #[test]
    fn group_commit_defers_fsync_until_flush_wal() {
        // With group_commit on, journalled effects survive only after the
        // explicit flush; the append path itself never fsyncs. (Appends
        // still hit the page cache, so this asserts the *flush contract*:
        // flush_wal succeeds and a restart recovers everything.)
        let dir = temp_dir("group-commit");
        let mut config = base_config();
        let mut durability = DurabilityConfig::new(&dir);
        durability.group_commit = true;
        config.durability = Some(durability);
        let svc = Service::new(config.clone()).unwrap();
        let id = open_one(&svc, None)[0].session;
        svc.handle(Request::Select { session: id });
        svc.flush_wal().unwrap();
        drop(svc);
        let revived = Service::new(config).unwrap();
        let Response::Status { pending, .. } = revived.handle(Request::Status { session: id })
        else {
            panic!("status failed");
        };
        assert_eq!(pending, 2, "group-committed effects must recover");
    }

    #[test]
    fn hello_negotiates_the_wire_version() {
        let svc = service();
        assert_eq!(
            svc.handle(Request::Hello { v: 1 }),
            Response::Welcome {
                v: 1,
                min: crate::protocol::WIRE_VERSION_MIN,
                max: crate::protocol::WIRE_VERSION_MAX,
            }
        );
        assert_eq!(
            svc.handle(Request::Hello { v: 99 }),
            Response::UnsupportedVersion {
                requested: 99,
                min: crate::protocol::WIRE_VERSION_MIN,
                max: crate::protocol::WIRE_VERSION_MAX,
            }
        );
    }

    #[test]
    fn handle_line_echoes_the_request_framing() {
        use serde::{Deserialize, Value};
        let svc = service();
        // Bare in, bare out — byte-identical to the pre-envelope wire.
        let bare = svc.handle_line(&crate::protocol::encode(&Request::Metrics));
        assert_eq!(bare, crate::protocol::encode(&svc.handle(Request::Metrics)));
        // Enveloped in, enveloped out, same version.
        let versioned = svc.handle_line(r#"{"v": 1, "body": "Metrics"}"#);
        let value: Value = serde_json::from_str(&versioned).unwrap();
        assert_eq!(value.get_field("v"), Some(&Value::Int(1)));
        assert!(value.get_field("body").is_some());
        // An unsupported version is refused with the supported range.
        let refused = svc.handle_line(r#"{"v": 7, "body": "Metrics"}"#);
        let value: Value = serde_json::from_str(&refused).unwrap();
        let body = value.get_field("body").unwrap();
        assert_eq!(
            Response::from_value(body).unwrap(),
            crate::protocol::unsupported_version(7)
        );
    }

    // ---- global budget scheduler ----------------------------------

    fn global_config(budget: u64) -> ServiceConfig {
        let mut config = base_config();
        config.budget_mode = BudgetMode::Global;
        config.global_budget = budget;
        config
    }

    fn open_entity(svc: &Service, spec: EntitySpec) -> u64 {
        let Response::Opened { sessions } = svc.handle(Request::Open {
            request: None,
            entities: vec![spec],
            k: None,
            budget: None,
            pc: None,
        }) else {
            panic!("open failed");
        };
        sessions[0].session
    }

    /// Near-certain marginals: tiny entropy, tiny marginal gain.
    fn easy_spec() -> EntitySpec {
        EntitySpec::simple("easy", vec![0.95, 0.9, 0.92], vec![true, true, true])
    }

    /// Coin-flip marginals: maximal entropy, maximal marginal gain.
    fn hard_spec() -> EntitySpec {
        EntitySpec::simple("hard", vec![0.5, 0.5, 0.5], vec![true, false, true])
    }

    fn absorb_all(svc: &Service, session: u64, tasks: &[PublishedTask]) {
        let answers: Vec<WA> = tasks
            .iter()
            .map(|t| WA {
                task: t.id,
                value: true,
            })
            .collect();
        let Response::Absorbed { pending, .. } = svc.handle(Request::Absorb { session, answers })
        else {
            panic!("absorb failed");
        };
        assert_eq!(pending, 0, "round must close");
    }

    #[test]
    fn global_mode_admits_by_descending_marginal_gain() {
        let svc = Service::new(global_config(40)).unwrap();
        let easy = open_entity(&svc, easy_spec());
        let hard = open_entity(&svc, hard_spec());
        // The scheduler prefers the high-entropy session...
        let Response::Budget {
            mode,
            budget,
            spent,
            next_session,
            ..
        } = svc.handle(Request::BudgetStatus)
        else {
            panic!("budget status failed");
        };
        assert_eq!((mode.as_str(), budget, spent), ("global", 40, 0));
        assert_eq!(next_session, Some(hard));
        // ...so selecting the easy one is deferred, naming the winner.
        assert_eq!(
            svc.handle(Request::Select { session: easy }),
            Response::Deferred {
                session: easy,
                preferred: Some(hard),
            }
        );
        // Select on the winner is admitted and charged to the pool.
        let Response::Round { session, tasks, .. } = svc.handle(Request::Select { session: hard })
        else {
            panic!("admitted select failed");
        };
        assert_eq!(session, hard);
        let Response::Budget { spent, .. } = svc.handle(Request::BudgetStatus) else {
            panic!("budget status failed");
        };
        assert_eq!(spent, tasks.len() as u64);
        // While the round is open the session is dequeued: the easy one
        // is now the scheduler's best.
        let Response::Budget { next_session, .. } = svc.handle(Request::BudgetStatus) else {
            panic!("budget status failed");
        };
        assert_eq!(next_session, Some(easy));
        // Re-selecting the busy session stays an idempotent pure read.
        let Response::Round { tasks: again, .. } = svc.handle(Request::Select { session: hard })
        else {
            panic!("re-select failed");
        };
        assert_eq!(again, tasks);
        // Absorbing the round re-queues it with a fresh gain.
        absorb_all(&svc, hard, &tasks);
        let Response::Budget { next_session, .. } = svc.handle(Request::BudgetStatus) else {
            panic!("budget status failed");
        };
        assert!(next_session.is_some());
    }

    #[test]
    fn equal_gains_break_ties_toward_the_lower_session_id() {
        let svc = Service::new(global_config(40)).unwrap();
        let first = open_entity(&svc, hard_spec());
        let second = open_entity(&svc, hard_spec());
        assert!(first < second);
        let Response::Budget { next_session, .. } = svc.handle(Request::BudgetStatus) else {
            panic!("budget status failed");
        };
        assert_eq!(next_session, Some(first));
    }

    #[test]
    fn schedule_drains_the_pool_then_reports_no_work() {
        // Pool of 2 with k=2: one admitted round spends everything.
        let svc = Service::new(global_config(2)).unwrap();
        let easy = open_entity(&svc, easy_spec());
        let hard = open_entity(&svc, hard_spec());
        let Response::Round { session, tasks, .. } =
            svc.handle(Request::Schedule { request: None })
        else {
            panic!("schedule failed");
        };
        assert_eq!(session, hard, "best gain first");
        assert_eq!(tasks.len(), 2);
        assert_eq!(
            svc.handle(Request::Schedule { request: None }),
            Response::NoWork { remaining: 0 }
        );
        // An exhausted pool defers every round-opening select too.
        assert_eq!(
            svc.handle(Request::Select { session: easy }),
            Response::Deferred {
                session: easy,
                preferred: None,
            }
        );
    }

    #[test]
    fn schedule_token_retries_reread_instead_of_recharging() {
        let svc = Service::new(global_config(40)).unwrap();
        open_entity(&svc, easy_spec());
        let hard = open_entity(&svc, hard_spec());
        let Response::Round { session, tasks, .. } =
            svc.handle(Request::Schedule { request: Some(9) })
        else {
            panic!("schedule failed");
        };
        assert_eq!(session, hard);
        let spent_once = {
            let Response::Budget { spent, .. } = svc.handle(Request::BudgetStatus) else {
                panic!("budget status failed");
            };
            spent
        };
        // Retry with the round still open: same round, same tasks, no
        // new charge, no second admission.
        let Response::Round {
            session: replayed,
            tasks: replayed_tasks,
            ..
        } = svc.handle(Request::Schedule { request: Some(9) })
        else {
            panic!("retry failed");
        };
        assert_eq!((replayed, &replayed_tasks), (hard, &tasks));
        // Retry after the round absorbed: empty task list says the
        // admission is complete.
        absorb_all(&svc, hard, &tasks);
        let Response::Round {
            tasks: done_tasks, ..
        } = svc.handle(Request::Schedule { request: Some(9) })
        else {
            panic!("post-absorb retry failed");
        };
        assert!(done_tasks.is_empty());
        let Response::Budget { spent, .. } = svc.handle(Request::BudgetStatus) else {
            panic!("budget status failed");
        };
        assert_eq!(spent, spent_once, "retries never re-charge");
    }

    #[test]
    fn schedule_requires_global_mode_and_status_aggregates_per_session() {
        let svc = service();
        let response = svc.handle(Request::Schedule { request: None });
        assert!(
            matches!(response, Response::Error { ref message } if message.contains("budget-mode")),
            "{response:?}"
        );
        // BudgetStatus still answers: the per-session aggregate.
        let id = open_one(&svc, None)[0].session;
        let Response::Budget {
            mode,
            budget,
            spent,
            remaining,
            next_session,
            ..
        } = svc.handle(Request::BudgetStatus)
        else {
            panic!("budget status failed");
        };
        assert_eq!(mode, "per-session");
        assert_eq!((budget, spent, remaining), (6, 0, 6));
        assert_eq!(next_session, None);
        let _ = id;
    }

    #[test]
    fn global_sched_state_survives_restart() {
        let dir = temp_dir("sched-restart");
        let mut config = global_config(40);
        config.durability = Some(DurabilityConfig::new(&dir));
        let svc = Service::new(config.clone()).unwrap();
        open_entity(&svc, easy_spec());
        let hard = open_entity(&svc, hard_spec());
        let Response::Round { session, tasks, .. } =
            svc.handle(Request::Schedule { request: Some(3) })
        else {
            panic!("schedule failed");
        };
        assert_eq!(session, hard);
        let before = svc.handle(Request::BudgetStatus);
        // No shutdown, no drain: the journal alone must carry the
        // ledger (recharged from the replayed Schedule effect), the
        // admission mark, and the material to rebuild the queue.
        drop(svc);
        let revived = Service::new(config).unwrap();
        assert_eq!(revived.handle(Request::BudgetStatus), before);
        // The admitted round survives and the token still re-reads it.
        let Response::Round {
            session: replayed,
            tasks: replayed_tasks,
            ..
        } = revived.handle(Request::Schedule { request: Some(3) })
        else {
            panic!("post-restart retry failed");
        };
        assert_eq!((replayed, &replayed_tasks), (hard, &tasks));
    }
}
