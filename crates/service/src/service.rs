//! The daemon state: a [`SessionRegistry`] behind a mutex, one selector,
//! and the request dispatcher.

use crate::protocol::{Request, Response};
use crate::snapshot;
use crowdfusion_core::pool::Pool;
use crowdfusion_core::round::RoundConfig;
use crowdfusion_core::selection::{GreedySelector, RandomSelector, TaskSelector};
use crowdfusion_core::session::{SelectOutcome, SessionRegistry};
use crowdfusion_core::CoreError;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// The selector backends the daemon can run — the same matrix the CLI's
/// offline `refine` exposes, so a served session is comparable to an
/// offline run of the same backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SelectorChoice {
    /// Cached-scatter greedy (Algorithm 1), the default.
    Greedy,
    /// Greedy over the preprocessed answer table (Algorithm 2).
    GreedyPre,
    /// The random baseline.
    Random,
}

impl SelectorChoice {
    /// Parses the CLI spelling.
    pub fn parse(name: &str) -> Result<SelectorChoice, String> {
        match name {
            "greedy" => Ok(SelectorChoice::Greedy),
            "greedy-pre" => Ok(SelectorChoice::GreedyPre),
            "random" => Ok(SelectorChoice::Random),
            other => Err(format!("unknown selector {other:?}")),
        }
    }

    /// Builds the selector. The selector stays serial for the same reason
    /// the offline sharded runner keeps it serial: session work already
    /// saturates the pool's workers.
    fn build(self) -> Box<dyn TaskSelector + Send + Sync> {
        match self {
            SelectorChoice::Greedy => Box::new(GreedySelector::fast()),
            SelectorChoice::GreedyPre => Box::new(GreedySelector::fast().with_preprocess()),
            SelectorChoice::Random => Box::new(RandomSelector),
        }
    }
}

/// Daemon construction parameters (the CLI `serve` flags).
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Master seed: per-session RNG streams derive from it in open order,
    /// exactly like the offline sharded runner's entity streams.
    pub seed: u64,
    /// Default per-session round configuration (`open` may override).
    pub defaults: RoundConfig,
    /// Worker-pool width for prior building and restores.
    pub threads: usize,
    /// Task selection backend.
    pub selector: SelectorChoice,
    /// Snapshot path confinement. `Some(dir)`: clients may only name bare
    /// file names, resolved inside `dir` — a network client can then
    /// never read or write outside it. `None`: client paths are taken
    /// verbatim — only appropriate when every client is as trusted as the
    /// operator (the default loopback bind).
    pub snapshot_dir: Option<std::path::PathBuf>,
}

/// The long-lived daemon state shared by every connection.
pub struct Service {
    registry: Mutex<SessionRegistry>,
    selector: Box<dyn TaskSelector + Send + Sync>,
    threads: usize,
    snapshot_dir: Option<std::path::PathBuf>,
    shutdown: AtomicBool,
}

impl Service {
    /// Builds the daemon: one persistent worker pool, one selector, an
    /// empty registry.
    pub fn new(config: ServiceConfig) -> Service {
        let pool = Pool::new(config.threads);
        Service {
            registry: Mutex::new(SessionRegistry::new(config.seed, config.defaults, pool)),
            selector: config.selector.build(),
            threads: config.threads,
            snapshot_dir: config.snapshot_dir,
            shutdown: AtomicBool::new(false),
        }
    }

    /// Resolves a client-supplied snapshot path under the confinement
    /// policy (see [`ServiceConfig::snapshot_dir`]).
    fn resolve_snapshot_path(&self, path: &str) -> Result<std::path::PathBuf, String> {
        use std::path::Component;
        let Some(dir) = &self.snapshot_dir else {
            return Ok(std::path::PathBuf::from(path));
        };
        let p = std::path::Path::new(path);
        let mut components = p.components();
        let bare_file =
            matches!(components.next(), Some(Component::Normal(_))) && components.next().is_none();
        if !bare_file {
            return Err(format!(
                "snapshot path {path:?} must be a bare file name \
                 (snapshots are confined to the daemon's snapshot dir)"
            ));
        }
        Ok(dir.join(p))
    }

    /// Whether a `Shutdown` request has been served.
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Dispatches one request. Every failure maps to [`Response::Error`];
    /// the connection stays usable.
    pub fn handle(&self, request: Request) -> Response {
        match self.dispatch(request) {
            Ok(response) => response,
            Err(message) => Response::Error { message },
        }
    }

    /// Parses one wire line, dispatches it, encodes the response line.
    pub fn handle_line(&self, line: &str) -> String {
        let response = match crate::protocol::decode::<Request>(line) {
            Ok(request) => self.handle(request),
            Err(message) => Response::Error { message },
        };
        crate::protocol::encode(&response)
    }

    fn lock_registry(&self) -> Result<std::sync::MutexGuard<'_, SessionRegistry>, String> {
        self.registry
            .lock()
            .map_err(|_| "registry poisoned by an earlier panic; restart the daemon".to_string())
    }

    fn dispatch(&self, request: Request) -> Result<Response, String> {
        let err = |e: CoreError| e.to_string();
        // Snapshot/Restore touch the disk; their serialisation and file
        // IO run *outside* the registry lock so a large snapshot never
        // stalls other connections' Select/Absorb traffic — the lock is
        // held only for the in-memory clone (snapshot) or swap (restore).
        let request = match request {
            Request::Snapshot { path } => {
                let resolved = self.resolve_snapshot_path(&path)?;
                let snap = self.lock_registry()?.snapshot();
                let sessions = snap.sessions.len() as u64;
                snapshot::save(&snap, &resolved)
                    .map_err(|e| format!("cannot write snapshot {path}: {e}"))?;
                return Ok(Response::Snapshotted { path, sessions });
            }
            Request::Restore { path } => {
                let resolved = self.resolve_snapshot_path(&path)?;
                let snap = snapshot::load(&resolved)
                    .map_err(|e| format!("cannot read snapshot {path}: {e}"))?;
                let mut registry = self.lock_registry()?;
                let pool = registry.pool().clone();
                let restored = SessionRegistry::from_snapshot(snap, pool).map_err(err)?;
                let sessions = restored.len() as u64;
                *registry = restored;
                return Ok(Response::Restored { path, sessions });
            }
            other => other,
        };
        let mut registry = self.lock_registry()?;
        match request {
            Request::Open {
                entities,
                k,
                budget,
                pc,
            } => {
                let defaults = registry.defaults();
                let config = if k.is_some() || budget.is_some() || pc.is_some() {
                    Some(
                        RoundConfig::new(
                            k.unwrap_or(defaults.k),
                            budget.unwrap_or(defaults.budget),
                            pc.unwrap_or(defaults.pc_assumed),
                        )
                        .map_err(err)?,
                    )
                } else {
                    None
                };
                let sessions = registry.open_batch(entities, config).map_err(err)?;
                Ok(Response::Opened { sessions })
            }
            Request::Select { session } => {
                match registry
                    .select(session, self.selector.as_ref())
                    .map_err(err)?
                {
                    SelectOutcome::Round(round) => Ok(Response::Round {
                        session,
                        round: round.round,
                        tasks: round.tasks,
                    }),
                    SelectOutcome::Exhausted => {
                        let state = registry.get(session).map_err(err)?;
                        Ok(Response::Exhausted {
                            session,
                            rounds: state.rounds(),
                            spent: state.spent(),
                        })
                    }
                }
            }
            Request::Absorb { session, answers } => {
                let answers: Vec<(u64, bool)> = answers.iter().map(|a| (a.task, a.value)).collect();
                let report = registry.absorb(session, &answers).map_err(err)?;
                Ok(Response::Absorbed {
                    session,
                    accepted: report.accepted,
                    duplicates: report.duplicates,
                    pending: report.pending,
                    closed: report.closed,
                })
            }
            Request::Snapshot { .. } | Request::Restore { .. } => {
                unreachable!("snapshot verbs are handled before the registry lock")
            }
            Request::Status { session } => {
                let state = registry.get(session).map_err(err)?;
                Ok(Response::Status {
                    session,
                    name: state.name().to_string(),
                    facts: state.num_facts(),
                    rounds: state.rounds(),
                    spent: state.spent(),
                    remaining: state.remaining(),
                    pending: state.pending_answers(),
                    exhausted: state.is_exhausted(),
                    utility: state.utility(),
                    entropy: state.entropy(),
                })
            }
            Request::Metrics => Ok(Response::Metrics {
                metrics: registry.metrics(),
            }),
            Request::Trace => Ok(Response::Trace {
                trace: registry.trace(self.selector.name()),
            }),
            Request::Shutdown => {
                self.shutdown.store(true, Ordering::SeqCst);
                Ok(Response::Bye)
            }
        }
    }

    /// Worker-pool width (used to size pools for restored registries).
    pub fn threads(&self) -> usize {
        self.threads
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::WireAnswer;
    use crowdfusion_core::session::EntitySpec;

    fn service() -> Service {
        Service::new(ServiceConfig {
            seed: 7,
            defaults: RoundConfig::new(2, 6, 0.8).unwrap(),
            threads: 2,
            selector: SelectorChoice::Greedy,
            snapshot_dir: None,
        })
    }

    fn spec() -> EntitySpec {
        EntitySpec::simple("b", vec![0.5, 0.6, 0.7], vec![true, false, true])
    }

    #[test]
    fn selector_choice_parses_the_cli_matrix() {
        assert_eq!(
            SelectorChoice::parse("greedy").unwrap(),
            SelectorChoice::Greedy
        );
        assert_eq!(
            SelectorChoice::parse("greedy-pre").unwrap(),
            SelectorChoice::GreedyPre
        );
        assert_eq!(
            SelectorChoice::parse("random").unwrap(),
            SelectorChoice::Random
        );
        assert!(SelectorChoice::parse("oracle").is_err());
    }

    #[test]
    fn open_select_absorb_cycle_end_to_end() {
        let svc = service();
        let Response::Opened { sessions } = svc.handle(Request::Open {
            entities: vec![spec()],
            k: None,
            budget: None,
            pc: None,
        }) else {
            panic!("open failed");
        };
        let id = sessions[0].session;
        let Response::Round { tasks, round, .. } = svc.handle(Request::Select { session: id })
        else {
            panic!("select failed");
        };
        assert_eq!(round, 1);
        assert_eq!(tasks.len(), 2);
        let answers: Vec<WireAnswer> = tasks
            .iter()
            .map(|t| WireAnswer {
                task: t.id,
                value: true,
            })
            .collect();
        let Response::Absorbed {
            accepted,
            pending,
            closed,
            ..
        } = svc.handle(Request::Absorb {
            session: id,
            answers,
        })
        else {
            panic!("absorb failed");
        };
        assert_eq!(accepted, 2);
        assert_eq!(pending, 0);
        assert!(closed.is_some());
        let Response::Status { rounds, spent, .. } = svc.handle(Request::Status { session: id })
        else {
            panic!("status failed");
        };
        assert_eq!((rounds, spent), (1, 2));
        let Response::Metrics { metrics } = svc.handle(Request::Metrics) else {
            panic!("metrics failed");
        };
        assert_eq!(metrics.judgments, 2);
    }

    #[test]
    fn errors_are_responses_not_disconnects() {
        let svc = service();
        assert!(matches!(
            svc.handle(Request::Select { session: 42 }),
            Response::Error { .. }
        ));
        assert!(matches!(
            svc.handle(Request::Open {
                entities: vec![spec()],
                k: Some(0),
                budget: None,
                pc: None,
            }),
            Response::Error { .. }
        ));
        let reply = svc.handle_line("{garbage");
        assert!(reply.contains("Error"));
        // Still serving afterwards.
        assert!(matches!(
            svc.handle(Request::Metrics),
            Response::Metrics { .. }
        ));
    }

    #[test]
    fn snapshot_dir_confines_client_paths() {
        let dir = std::env::temp_dir().join("crowdfusion-service-confine-test");
        std::fs::create_dir_all(&dir).unwrap();
        let mut config = ServiceConfig {
            seed: 7,
            defaults: RoundConfig::new(2, 6, 0.8).unwrap(),
            threads: 1,
            selector: SelectorChoice::Greedy,
            snapshot_dir: Some(dir.clone()),
        };
        let svc = Service::new(config.clone());
        // Traversal and absolute paths are rejected without touching disk.
        for bad in ["../escape.json", "/etc/hostname", "a/b.json", ""] {
            let response = svc.handle(Request::Snapshot {
                path: bad.to_string(),
            });
            assert!(
                matches!(response, Response::Error { ref message } if message.contains("bare file name")),
                "path {bad:?} gave {response:?}"
            );
        }
        // A bare file name lands inside the configured directory.
        assert!(matches!(
            svc.handle(Request::Snapshot {
                path: "ok.json".to_string(),
            }),
            Response::Snapshotted { .. }
        ));
        assert!(dir.join("ok.json").exists());
        assert!(matches!(
            svc.handle(Request::Restore {
                path: "ok.json".to_string(),
            }),
            Response::Restored { .. }
        ));
        std::fs::remove_file(dir.join("ok.json")).ok();
        // Unconfined daemons keep verbatim paths (trusted operators).
        config.snapshot_dir = None;
        let open = Service::new(config);
        let path = dir.join("direct.json").to_string_lossy().into_owned();
        assert!(matches!(
            open.handle(Request::Snapshot { path: path.clone() }),
            Response::Snapshotted { .. }
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn shutdown_sets_the_flag() {
        let svc = service();
        assert!(!svc.shutdown_requested());
        assert_eq!(svc.handle(Request::Shutdown), Response::Bye);
        assert!(svc.shutdown_requested());
    }
}
