//! The service determinism contract, property-tested.
//!
//! 1. **Arrival-order invariance (satellite).** Any permutation +
//!    duplication of a round's answers yields a posterior bit-identical
//!    to in-order absorption.
//! 2. **Service == offline (acceptance).** A daemon opened with an
//!    offline experiment's entities, in order, and fed the seeded crowd's
//!    answers — scrambled, split into partial batches and partly
//!    duplicated — produces a trace bit-identical to
//!    [`Experiment::run_sharded`], at multiple thread counts.
//! 3. **Shard-count invariance (tentpole).** The lock-striped registry
//!    at 2 and 8 shards reproduces the single-registry (1-shard) daemon
//!    bit for bit at 1 and 4 pool threads — including a snapshot taken
//!    mid-round and restored into a daemon with a *different* shard
//!    count, since shard assignment is pure routing, never state.

use crowdfusion_core::pool::Pool;
use crowdfusion_core::round::RoundConfig;
use crowdfusion_core::selection::GreedySelector;
use crowdfusion_core::session::{EntitySpec, SelectOutcome, SessionState};
use crowdfusion_core::system::{Experiment, ExperimentTrace};
use crowdfusion_crowd::{AnswerReplay, CrowdPlatform, Task, TaskId, UniformAccuracy, WorkerPool};
use crowdfusion_service::protocol::{Request, Response, WireAnswer};
use crowdfusion_service::service::{SelectorChoice, ServiceConfig};
use crowdfusion_service::{BudgetMode, Service};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

const WORKERS: usize = 8;

/// Deterministic small entities derived from `seed` (mirrors the offline
/// batched-rounds property tests): 2–3 entities, 2–4 facts, one
/// correlation group on the larger ones.
fn specs_from_seed(seed: u64) -> Vec<EntitySpec> {
    let mut gen = StdRng::seed_from_u64(seed);
    let entities = 2 + (seed as usize) % 2;
    (0..entities)
        .map(|e| {
            let n = 2 + (e + seed as usize) % 3;
            let marginals: Vec<f64> = (0..n).map(|_| gen.gen_range(0.05..0.95)).collect();
            let gold: Vec<bool> = (0..n).map(|_| gen.gen_bool(0.5)).collect();
            let mut spec = EntitySpec::simple(format!("e{e}"), marginals, gold);
            if n >= 3 {
                spec.groups = vec![vec![0, 1]];
            }
            spec
        })
        .collect()
}

fn offline_trace(
    specs: &[EntitySpec],
    config: RoundConfig,
    seed: u64,
    threads: usize,
) -> ExperimentTrace {
    let cases = specs
        .iter()
        .map(|s| s.clone().into_case().unwrap())
        .collect();
    let experiment = Experiment::new(cases, config).unwrap();
    let mut platform = CrowdPlatform::new(
        WorkerPool::uniform(WORKERS, config.pc_assumed).unwrap(),
        UniformAccuracy::new(config.pc_assumed),
        seed,
    );
    let mut rng = StdRng::seed_from_u64(seed);
    experiment
        .run_sharded(
            &GreedySelector::fast(),
            &mut platform,
            &mut rng,
            &Pool::new(threads),
        )
        .unwrap()
}

/// Drives a daemon end-to-end: opens every spec, then round-robins the
/// sessions — each open round is answered from the session's seeded
/// replay stream, then delivered scrambled (`order_seed`): shuffled,
/// split into two batches, with one answer duplicated in between.
fn service_trace(
    specs: &[EntitySpec],
    config: RoundConfig,
    seed: u64,
    threads: usize,
    order_seed: u64,
) -> ExperimentTrace {
    let service = Service::new(ServiceConfig::new(
        seed,
        config,
        threads,
        SelectorChoice::Greedy,
    ))
    .unwrap();
    let Response::Opened { sessions } = service.handle(Request::Open {
        request: None,
        entities: specs.to_vec(),
        k: None,
        budget: None,
        pc: None,
    }) else {
        panic!("open failed");
    };
    let pool = WorkerPool::uniform(WORKERS, config.pc_assumed).unwrap();
    let model = UniformAccuracy::new(config.pc_assumed);
    let mut replays: Vec<AnswerReplay> = sessions
        .iter()
        .map(|s| AnswerReplay::from_seed(s.answer_seed))
        .collect();
    let mut scramble = StdRng::seed_from_u64(order_seed);
    let mut live: Vec<bool> = vec![true; sessions.len()];
    while live.iter().any(|&l| l) {
        for (i, info) in sessions.iter().enumerate() {
            if !live[i] {
                continue;
            }
            let response = service.handle(Request::Select {
                session: info.session,
            });
            let tasks = match response {
                Response::Round { tasks, .. } => tasks,
                Response::Exhausted { .. } => {
                    live[i] = false;
                    continue;
                }
                other => panic!("unexpected select response {other:?}"),
            };
            // The simulated crowd answers from the recorded seed stream.
            let crowd_tasks: Vec<Task> = tasks
                .iter()
                .map(|t| Task {
                    id: TaskId(t.id),
                    prompt: t.prompt.clone(),
                    class: t.class,
                })
                .collect();
            let truths: Vec<bool> = tasks.iter().map(|t| specs[i].gold[t.fact]).collect();
            let answers = replays[i]
                .answers(&pool, &model, &crowd_tasks, &truths)
                .unwrap();
            // Scrambled delivery: shuffle, split, duplicate one answer.
            let mut wire: Vec<WireAnswer> = answers
                .iter()
                .map(|a| WireAnswer {
                    task: a.task.0,
                    value: a.value,
                })
                .collect();
            wire.shuffle(&mut scramble);
            let cut = scramble.gen_range(0..=wire.len());
            for batch in [&wire[..cut], &wire[..1.min(wire.len())], &wire[cut..]] {
                if batch.is_empty() {
                    continue;
                }
                match service.handle(Request::Absorb {
                    session: info.session,
                    answers: batch.to_vec(),
                }) {
                    Response::Absorbed { .. } => {}
                    other => panic!("unexpected absorb response {other:?}"),
                }
            }
        }
    }
    let Response::Trace { trace } = service.handle(Request::Trace) else {
        panic!("trace failed");
    };
    trace
}

/// Like [`service_trace`], with an explicit shard count and an optional
/// mid-round handoff: after the first delivered batch of the first
/// round, the registry is snapshotted (open partial round and all) and
/// restored into a *fresh* daemon striped across `restore_shards`.
#[allow(clippy::too_many_arguments)]
fn sharded_service_trace(
    specs: &[EntitySpec],
    config: RoundConfig,
    seed: u64,
    threads: usize,
    shards: usize,
    order_seed: u64,
    restore_shards: Option<usize>,
) -> ExperimentTrace {
    let make = |shards: usize| {
        let mut service_config = ServiceConfig::new(seed, config, threads, SelectorChoice::Greedy);
        service_config.shards = shards;
        Service::new(service_config).unwrap()
    };
    let mut service = make(shards);
    let Response::Opened { sessions } = service.handle(Request::Open {
        request: None,
        entities: specs.to_vec(),
        k: None,
        budget: None,
        pc: None,
    }) else {
        panic!("open failed");
    };
    let pool = WorkerPool::uniform(WORKERS, config.pc_assumed).unwrap();
    let model = UniformAccuracy::new(config.pc_assumed);
    let mut replays: Vec<AnswerReplay> = sessions
        .iter()
        .map(|s| AnswerReplay::from_seed(s.answer_seed))
        .collect();
    let mut scramble = StdRng::seed_from_u64(order_seed);
    let mut pending_handoff = restore_shards;
    let mut live: Vec<bool> = vec![true; sessions.len()];
    while live.iter().any(|&l| l) {
        for (i, info) in sessions.iter().enumerate() {
            if !live[i] {
                continue;
            }
            let response = service.handle(Request::Select {
                session: info.session,
            });
            let tasks = match response {
                Response::Round { tasks, .. } => tasks,
                Response::Exhausted { .. } => {
                    live[i] = false;
                    continue;
                }
                other => panic!("unexpected select response {other:?}"),
            };
            let crowd_tasks: Vec<Task> = tasks
                .iter()
                .map(|t| Task {
                    id: TaskId(t.id),
                    prompt: t.prompt.clone(),
                    class: t.class,
                })
                .collect();
            let truths: Vec<bool> = tasks.iter().map(|t| specs[i].gold[t.fact]).collect();
            let answers = replays[i]
                .answers(&pool, &model, &crowd_tasks, &truths)
                .unwrap();
            let mut wire: Vec<WireAnswer> = answers
                .iter()
                .map(|a| WireAnswer {
                    task: a.task.0,
                    value: a.value,
                })
                .collect();
            wire.shuffle(&mut scramble);
            let cut = scramble.gen_range(0..=wire.len());
            for batch in [&wire[..cut], &wire[..1.min(wire.len())], &wire[cut..]] {
                if !batch.is_empty() {
                    match service.handle(Request::Absorb {
                        session: info.session,
                        answers: batch.to_vec(),
                    }) {
                        Response::Absorbed { .. } => {}
                        other => panic!("unexpected absorb response {other:?}"),
                    }
                }
                // Mid-round handoff: snapshot the partially answered
                // round and restore it into a daemon with a different
                // stripe count.
                if let Some(to) = pending_handoff.take() {
                    let path = std::env::temp_dir()
                        .join(format!(
                            "cf-shard-handoff-{seed}-{order_seed}-{shards}-{to}-{threads}.snap"
                        ))
                        .to_string_lossy()
                        .into_owned();
                    let Response::Snapshotted { .. } =
                        service.handle(Request::Snapshot { path: path.clone() })
                    else {
                        panic!("snapshot failed");
                    };
                    service = make(to);
                    let Response::Restored { .. } =
                        service.handle(Request::Restore { path: path.clone() })
                    else {
                        panic!("restore failed");
                    };
                    std::fs::remove_file(&path).ok();
                }
            }
        }
    }
    let Response::Trace { trace } = service.handle(Request::Trace) else {
        panic!("trace failed");
    };
    trace
}

/// Drives a *global-budget* daemon entirely through the `Schedule` verb
/// until the shared pool runs dry or no session has work left, absorbing
/// each admitted round scrambled. Returns the admission order (the
/// sequence of sessions the scheduler picked), the final trace, and the
/// closing `BudgetStatus` response.
fn global_sched_trace(
    specs: &[EntitySpec],
    config: RoundConfig,
    seed: u64,
    threads: usize,
    shards: usize,
    global_budget: u64,
    order_seed: u64,
) -> (Vec<u64>, ExperimentTrace, Response) {
    let mut service_config = ServiceConfig::new(seed, config, threads, SelectorChoice::Greedy);
    service_config.shards = shards;
    service_config.budget_mode = BudgetMode::Global;
    service_config.global_budget = global_budget;
    let service = Service::new(service_config).unwrap();
    let Response::Opened { sessions } = service.handle(Request::Open {
        request: None,
        entities: specs.to_vec(),
        k: None,
        budget: None,
        pc: None,
    }) else {
        panic!("open failed");
    };
    let pool = WorkerPool::uniform(WORKERS, config.pc_assumed).unwrap();
    let model = UniformAccuracy::new(config.pc_assumed);
    let mut replays: Vec<AnswerReplay> = sessions
        .iter()
        .map(|s| AnswerReplay::from_seed(s.answer_seed))
        .collect();
    let index: BTreeMap<u64, usize> = sessions
        .iter()
        .enumerate()
        .map(|(i, s)| (s.session, i))
        .collect();
    let mut scramble = StdRng::seed_from_u64(order_seed);
    let mut admitted = Vec::new();
    loop {
        let (session, tasks) = match service.handle(Request::Schedule { request: None }) {
            Response::NoWork { .. } => break,
            Response::Round { session, tasks, .. } => (session, tasks),
            other => panic!("unexpected schedule response {other:?}"),
        };
        admitted.push(session);
        let i = index[&session];
        let crowd_tasks: Vec<Task> = tasks
            .iter()
            .map(|t| Task {
                id: TaskId(t.id),
                prompt: t.prompt.clone(),
                class: t.class,
            })
            .collect();
        let truths: Vec<bool> = tasks.iter().map(|t| specs[i].gold[t.fact]).collect();
        let answers = replays[i]
            .answers(&pool, &model, &crowd_tasks, &truths)
            .unwrap();
        let mut wire: Vec<WireAnswer> = answers
            .iter()
            .map(|a| WireAnswer {
                task: a.task.0,
                value: a.value,
            })
            .collect();
        wire.shuffle(&mut scramble);
        let cut = scramble.gen_range(0..=wire.len());
        for batch in [&wire[..cut], &wire[..1.min(wire.len())], &wire[cut..]] {
            if batch.is_empty() {
                continue;
            }
            match service.handle(Request::Absorb {
                session,
                answers: batch.to_vec(),
            }) {
                Response::Absorbed { .. } => {}
                other => panic!("unexpected absorb response {other:?}"),
            }
        }
    }
    let Response::Trace { trace } = service.handle(Request::Trace) else {
        panic!("trace failed");
    };
    let budget = service.handle(Request::BudgetStatus);
    (admitted, trace, budget)
}

/// Satellite (PR 10): with the scheduler off (the default), the daemon
/// is *byte-identical* to its pre-scheduler ancestor — the WAL carries
/// no `Schedule` effects and the durable snapshot has no `sched` key, so
/// artifacts written today replay cleanly on the old decoder and vice
/// versa.
#[test]
fn per_session_daemon_writes_no_scheduler_bytes() {
    use crowdfusion_service::durable::{DurabilityConfig, JOURNAL_FILE, SNAPSHOT_FILE};
    let dir = std::env::temp_dir().join(format!(
        "cf-sched-off-bytes-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let specs = specs_from_seed(3);
    let config = RoundConfig::new(2, 6, 0.8).unwrap();
    let mut service_config = ServiceConfig::new(3, config, 1, SelectorChoice::Greedy);
    service_config.durability = Some(DurabilityConfig::new(&dir));
    let service = Service::new(service_config).unwrap();
    let Response::Opened { sessions } = service.handle(Request::Open {
        request: None,
        entities: specs.clone(),
        k: None,
        budget: None,
        pc: None,
    }) else {
        panic!("open failed");
    };
    // One full round plus one partial, so the WAL holds Open, Select and
    // Absorb effects; Shutdown drains the snapshot.
    let Response::Round { tasks, .. } = service.handle(Request::Select {
        session: sessions[0].session,
    }) else {
        panic!("select failed");
    };
    let pool = WorkerPool::uniform(WORKERS, config.pc_assumed).unwrap();
    let model = UniformAccuracy::new(config.pc_assumed);
    let crowd_tasks: Vec<Task> = tasks
        .iter()
        .map(|t| Task {
            id: TaskId(t.id),
            prompt: t.prompt.clone(),
            class: t.class,
        })
        .collect();
    let truths: Vec<bool> = tasks.iter().map(|t| specs[0].gold[t.fact]).collect();
    let answers = AnswerReplay::from_seed(sessions[0].answer_seed)
        .answers(&pool, &model, &crowd_tasks, &truths)
        .unwrap();
    let wire: Vec<WireAnswer> = answers
        .iter()
        .take(1)
        .map(|a| WireAnswer {
            task: a.task.0,
            value: a.value,
        })
        .collect();
    let Response::Absorbed { .. } = service.handle(Request::Absorb {
        session: sessions[0].session,
        answers: wire,
    }) else {
        panic!("absorb failed");
    };
    let journal = std::fs::read(dir.join(JOURNAL_FILE)).unwrap();
    assert!(!journal.is_empty(), "the WAL must hold the effects");
    let journal_text = String::from_utf8_lossy(&journal);
    assert!(
        !journal_text.contains("Schedule"),
        "per-session WALs must not mention the scheduler"
    );
    let Response::Bye = service.handle(Request::Shutdown) else {
        panic!("shutdown failed");
    };
    let snapshot = std::fs::read_to_string(dir.join(SNAPSHOT_FILE)).unwrap();
    assert!(
        !snapshot.contains("sched"),
        "per-session snapshots must not carry a sched key: {snapshot}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Satellite: any permutation + duplication of a round's answers
    /// yields a bit-identical posterior to in-order absorption.
    #[test]
    fn permuted_duplicated_absorption_is_bit_identical(
        seed in 0u64..1000,
        order_seed in 0u64..1000,
    ) {
        let spec = specs_from_seed(seed).remove(0);
        let config = RoundConfig::new(2, 6, 0.8).unwrap();
        let drive = |scramble: Option<u64>| {
            let mut session =
                SessionState::new(spec.clone().into_case().unwrap(), config, seed, 0).unwrap();
            let mut rng = scramble.map(StdRng::seed_from_u64);
            let mut replay = AnswerReplay::from_seed(seed ^ 0xabcd);
            let pool = WorkerPool::uniform(WORKERS, 0.8).unwrap();
            let model = UniformAccuracy::new(0.8);
            while let SelectOutcome::Round(round) =
                session.select(&GreedySelector::fast()).unwrap()
            {
                let crowd_tasks: Vec<Task> = round
                    .tasks
                    .iter()
                    .map(|t| Task {
                        id: TaskId(t.id),
                        prompt: t.prompt.clone(),
                        class: t.class,
                    })
                    .collect();
                let truths: Vec<bool> =
                    round.tasks.iter().map(|t| spec.gold[t.fact]).collect();
                let answers = replay.answers(&pool, &model, &crowd_tasks, &truths).unwrap();
                let mut pairs: Vec<(u64, bool)> =
                    answers.iter().map(|a| (a.task.0, a.value)).collect();
                if let Some(rng) = rng.as_mut() {
                    // Permute and duplicate: every answer delivered twice,
                    // one at a time, in shuffled order.
                    pairs.shuffle(rng);
                    let doubled: Vec<(u64, bool)> =
                        pairs.iter().chain(pairs.iter()).copied().collect();
                    for pair in doubled {
                        session.absorb(&[pair]).unwrap();
                    }
                } else {
                    session.absorb(&pairs).unwrap();
                }
            }
            session
        };
        let reference = drive(None);
        let scrambled = drive(Some(order_seed));
        prop_assert_eq!(reference.posterior(), scrambled.posterior());
        prop_assert_eq!(reference.points(), scrambled.points());
    }

    /// Acceptance: the daemon reproduces the offline sharded experiment
    /// bit for bit at ≥ 2 thread counts, under scrambled + duplicated
    /// answer delivery.
    #[test]
    fn service_matches_offline_run_sharded_across_threads(
        seed in 0u64..1000,
        order_seed in 0u64..1000,
    ) {
        let specs = specs_from_seed(seed);
        let config = RoundConfig::new(2, 6, 0.8).unwrap();
        let reference = offline_trace(&specs, config, seed, 1);
        for threads in [1usize, 4] {
            prop_assert_eq!(
                &offline_trace(&specs, config, seed, threads),
                &reference,
                "offline threads = {}", threads
            );
            let served = service_trace(&specs, config, seed, threads, order_seed);
            prop_assert_eq!(&served, &reference, "service threads = {}", threads);
        }
    }

    /// Tentpole: the lock-striped registry is invisible in the trace.
    /// Every shard count × thread count reproduces the single-registry
    /// daemon bit for bit, and a snapshot taken mid-round restores into
    /// a daemon with a different shard count without perturbing it.
    #[test]
    fn sharded_daemon_matches_single_registry_daemon(
        seed in 0u64..1000,
        order_seed in 0u64..1000,
    ) {
        let specs = specs_from_seed(seed);
        let config = RoundConfig::new(2, 6, 0.8).unwrap();
        // The single-registry reference: one shard, one pool thread.
        let reference =
            sharded_service_trace(&specs, config, seed, 1, 1, order_seed, None);
        for shards in [2usize, 8] {
            for threads in [1usize, 4] {
                let served =
                    sharded_service_trace(&specs, config, seed, threads, shards, order_seed, None);
                prop_assert_eq!(
                    &served, &reference,
                    "shards = {}, threads = {}", shards, threads
                );
            }
        }
        // Mid-round snapshots cross shard counts freely: assignment is
        // routing, not state.
        for (from, to) in [(1usize, 8usize), (2, 8), (8, 2)] {
            let served =
                sharded_service_trace(&specs, config, seed, 4, from, order_seed, Some(to));
            prop_assert_eq!(&served, &reference, "restore {} -> {} shards", from, to);
        }
    }

    /// Tentpole (PR 10): the global budget scheduler is deterministic —
    /// the admission order (which session gets the pool, round by
    /// round), the final trace, and the closing ledger are bit-identical
    /// at every shard count × thread count, including when the pool runs
    /// dry mid-run.
    #[test]
    fn global_scheduler_is_bit_identical_across_shards_and_threads(
        seed in 0u64..1000,
        order_seed in 0u64..1000,
        global_budget in 4u64..20,
    ) {
        let specs = specs_from_seed(seed);
        let config = RoundConfig::new(2, 6, 0.8).unwrap();
        let reference =
            global_sched_trace(&specs, config, seed, 1, 1, global_budget, order_seed);
        prop_assert!(!reference.0.is_empty(), "the scheduler admitted nothing");
        for shards in [2usize, 8] {
            for threads in [1usize, 4] {
                let served = global_sched_trace(
                    &specs, config, seed, threads, shards, global_budget, order_seed,
                );
                prop_assert_eq!(
                    &served, &reference,
                    "shards = {}, threads = {}", shards, threads
                );
            }
        }
    }
}
