//! TCP transport smoke: a daemon on a loopback socket serves multiple
//! concurrent connections and stops cleanly on `Shutdown`.

use crowdfusion_core::round::RoundConfig;
use crowdfusion_core::session::EntitySpec;
use crowdfusion_service::protocol::{Request, Response, WireAnswer};
use crowdfusion_service::service::{SelectorChoice, ServiceConfig};
use crowdfusion_service::{serve_tcp, Client, Service};
use std::net::TcpListener;
use std::sync::Arc;

#[test]
fn tcp_daemon_serves_concurrent_clients_and_shuts_down() {
    let service = Arc::new(Service::new(ServiceConfig {
        seed: 5,
        defaults: RoundConfig::new(2, 4, 0.8).unwrap(),
        threads: 2,
        selector: SelectorChoice::Random,
        snapshot_dir: None,
    }));
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let daemon = {
        let service = Arc::clone(&service);
        std::thread::spawn(move || serve_tcp(service, listener))
    };

    // Client 1 opens a session and drives one round.
    let mut one = Client::connect(addr).unwrap();
    let Response::Opened { sessions } = one
        .roundtrip(&Request::Open {
            entities: vec![EntitySpec::simple("t", vec![0.4, 0.7], vec![true, false])],
            k: None,
            budget: None,
            pc: None,
        })
        .unwrap()
    else {
        panic!("open failed");
    };
    let id = sessions[0].session;
    let Response::Round { tasks, .. } = one.roundtrip(&Request::Select { session: id }).unwrap()
    else {
        panic!("select failed");
    };

    // Client 2, concurrently connected, absorbs the round — sessions are
    // shared daemon state, not per-connection state.
    let mut two = Client::connect(addr).unwrap();
    let answers: Vec<WireAnswer> = tasks
        .iter()
        .map(|t| WireAnswer {
            task: t.id,
            value: true,
        })
        .collect();
    let Response::Absorbed { pending, .. } = two
        .roundtrip(&Request::Absorb {
            session: id,
            answers,
        })
        .unwrap()
    else {
        panic!("absorb failed");
    };
    assert_eq!(pending, 0);

    // Client 1 sees the absorbed round.
    let Response::Status { rounds, spent, .. } =
        one.roundtrip(&Request::Status { session: id }).unwrap()
    else {
        panic!("status failed");
    };
    assert_eq!((rounds, spent), (1, 2));

    // Shutdown stops the daemon; the serve thread joins.
    assert_eq!(two.roundtrip(&Request::Shutdown).unwrap(), Response::Bye);
    let accepted = daemon.join().unwrap().unwrap();
    assert!(accepted >= 2, "both clients accepted, got {accepted}");
}
