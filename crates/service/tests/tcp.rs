//! TCP transport smoke: a daemon on a loopback socket serves multiple
//! concurrent connections, survives injected connection drops via the
//! client's retry layer, enforces read deadlines, and stops cleanly on
//! `Shutdown`.

use crowdfusion_core::round::RoundConfig;
use crowdfusion_core::session::EntitySpec;
use crowdfusion_service::protocol::{Request, Response, WireAnswer};
use crowdfusion_service::service::{SelectorChoice, ServiceConfig};
use crowdfusion_service::{
    serve_tcp, Client, FaultAction, FaultPlan, FaultPoint, RetryPolicy, Service,
};
use std::net::TcpListener;
use std::sync::Arc;

fn config() -> ServiceConfig {
    ServiceConfig::new(
        5,
        RoundConfig::new(2, 4, 0.8).unwrap(),
        2,
        SelectorChoice::Random,
    )
}

fn spawn_daemon(
    service: Arc<Service>,
) -> (
    std::net::SocketAddr,
    std::thread::JoinHandle<std::io::Result<usize>>,
) {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let daemon = std::thread::spawn(move || serve_tcp(service, listener));
    (addr, daemon)
}

fn spec() -> EntitySpec {
    EntitySpec::simple("t", vec![0.4, 0.7], vec![true, false])
}

#[test]
fn tcp_daemon_serves_concurrent_clients_and_shuts_down() {
    let service = Arc::new(Service::new(config()).unwrap());
    let (addr, daemon) = spawn_daemon(service);

    // Client 1 opens a session and drives one round.
    let mut one = Client::connect(addr).unwrap();
    let Response::Opened { sessions } = one
        .roundtrip(&Request::Open {
            request: None,
            entities: vec![spec()],
            k: None,
            budget: None,
            pc: None,
        })
        .unwrap()
    else {
        panic!("open failed");
    };
    let id = sessions[0].session;
    let Response::Round { tasks, .. } = one.roundtrip(&Request::Select { session: id }).unwrap()
    else {
        panic!("select failed");
    };

    // Client 2, concurrently connected, absorbs the round — sessions are
    // shared daemon state, not per-connection state.
    let mut two = Client::connect(addr).unwrap();
    let answers: Vec<WireAnswer> = tasks
        .iter()
        .map(|t| WireAnswer {
            task: t.id,
            value: true,
        })
        .collect();
    let Response::Absorbed { pending, .. } = two
        .roundtrip(&Request::Absorb {
            session: id,
            answers,
        })
        .unwrap()
    else {
        panic!("absorb failed");
    };
    assert_eq!(pending, 0);

    // Client 1 sees the absorbed round.
    let Response::Status { rounds, spent, .. } =
        one.roundtrip(&Request::Status { session: id }).unwrap()
    else {
        panic!("status failed");
    };
    assert_eq!((rounds, spent), (1, 2));

    // Shutdown stops the daemon; the serve thread joins.
    assert_eq!(two.roundtrip(&Request::Shutdown).unwrap(), Response::Bye);
    let accepted = daemon.join().unwrap().unwrap();
    assert!(accepted >= 2, "both clients accepted, got {accepted}");
}

#[test]
fn client_retry_rides_out_injected_connection_drops() {
    // The daemon drops the connection on the 2nd and 3rd line reads; the
    // retrying client reconnects and redelivers. The redelivered requests
    // are all idempotent (a token-carrying Open, then a Select on the
    // resulting open round), so the session ends up exactly once.
    let mut config = config();
    config.faults = FaultPlan::none()
        .on(FaultPoint::ConnectionRead, 2, FaultAction::Drop)
        .on(FaultPoint::ConnectionRead, 3, FaultAction::Drop);
    let service = Arc::new(Service::new(config).unwrap());
    let (addr, daemon) = spawn_daemon(Arc::clone(&service));
    let policy = RetryPolicy {
        attempts: 5,
        base_ms: 1,
        cap_ms: 5,
    };

    let mut client = Client::connect(addr).unwrap();
    let open = Request::Open {
        request: Some(77),
        entities: vec![spec()],
        k: None,
        budget: None,
        pc: None,
    };
    let Response::Opened { sessions } = client.roundtrip_retrying(&open, policy).unwrap() else {
        panic!("open failed");
    };
    let id = sessions[0].session;
    // This roundtrip eats both drops (each drop costs one reconnect).
    let Response::Round { tasks, .. } = client
        .roundtrip_retrying(&Request::Select { session: id }, policy)
        .unwrap()
    else {
        panic!("select failed");
    };
    assert_eq!(tasks.len(), 2);
    // Exactly one session exists despite the redeliveries.
    let Response::Metrics { metrics } = client
        .roundtrip_retrying(&Request::Metrics, policy)
        .unwrap()
    else {
        panic!("metrics failed");
    };
    assert_eq!(metrics.sessions, 1);
    assert_eq!(service.fault_plan().fired(), 2, "both drops must fire");

    assert_eq!(
        client
            .roundtrip_retrying(&Request::Shutdown, policy)
            .unwrap(),
        Response::Bye
    );
    daemon.join().unwrap().unwrap();
}

#[test]
fn silent_connections_are_closed_at_the_read_deadline() {
    let mut config = config();
    config.read_deadline_ms = Some(50);
    let service = Arc::new(Service::new(config).unwrap());
    let (addr, daemon) = spawn_daemon(service);

    // A client that connects and never speaks: the daemon hangs up.
    let mut silent = Client::connect(addr).unwrap();
    std::thread::sleep(std::time::Duration::from_millis(200));
    let err = silent.roundtrip(&Request::Metrics).unwrap_err();
    assert!(
        matches!(
            err.kind(),
            std::io::ErrorKind::UnexpectedEof
                | std::io::ErrorKind::ConnectionReset
                | std::io::ErrorKind::BrokenPipe
        ),
        "expected a closed connection, got {err:?}"
    );

    // A fresh, prompt connection is served normally.
    let mut prompt = Client::connect(addr).unwrap();
    assert!(matches!(
        prompt.roundtrip(&Request::Metrics).unwrap(),
        Response::Metrics { .. }
    ));
    assert_eq!(prompt.roundtrip(&Request::Shutdown).unwrap(), Response::Bye);
    daemon.join().unwrap().unwrap();
}
