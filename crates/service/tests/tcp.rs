//! TCP transport smoke: a daemon on a loopback socket serves multiple
//! concurrent connections, survives injected connection drops via the
//! client's retry layer, enforces read deadlines, and stops cleanly on
//! `Shutdown`.

use crowdfusion_core::round::RoundConfig;
use crowdfusion_core::session::EntitySpec;
use crowdfusion_service::protocol::{Request, Response};
use crowdfusion_service::service::{SelectorChoice, ServiceConfig};
use crowdfusion_service::{
    serve_tcp, Client, FaultAction, FaultPlan, FaultPoint, OpenOptions, RetryPolicy, Selected,
    Service,
};
use std::net::TcpListener;
use std::sync::Arc;

fn config() -> ServiceConfig {
    ServiceConfig::new(
        5,
        RoundConfig::new(2, 4, 0.8).unwrap(),
        2,
        SelectorChoice::Random,
    )
}

fn spawn_daemon(
    service: Arc<Service>,
) -> (
    std::net::SocketAddr,
    std::thread::JoinHandle<std::io::Result<usize>>,
) {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let daemon = std::thread::spawn(move || serve_tcp(service, listener));
    (addr, daemon)
}

fn spec() -> EntitySpec {
    EntitySpec::simple("t", vec![0.4, 0.7], vec![true, false])
}

#[test]
fn tcp_daemon_serves_concurrent_clients_and_shuts_down() {
    let service = Arc::new(Service::new(config()).unwrap());
    let (addr, daemon) = spawn_daemon(service);

    // Client 1 opens a session and drives one round — the typed
    // `open → select → absorb` chain, after a version handshake.
    let mut one = Client::connect(addr).unwrap();
    assert_eq!(one.hello().unwrap(), (1, 1));
    let mut session = one.open(spec(), OpenOptions::default()).unwrap();
    let id = session.id();
    let Selected::Round { tasks, .. } = session.select().unwrap() else {
        panic!("select failed");
    };

    // Client 2, concurrently connected, absorbs the round — sessions are
    // shared daemon state, not per-connection state.
    let mut two = Client::connect(addr).unwrap();
    let answers: Vec<(u64, bool)> = tasks.iter().map(|t| (t.id, true)).collect();
    let report = two.session(id).absorb(&answers).unwrap();
    assert_eq!(report.pending, 0);

    // Client 1 sees the absorbed round.
    let Response::Status { rounds, spent, .. } = one.session(id).status().unwrap() else {
        panic!("status failed");
    };
    assert_eq!((rounds, spent), (1, 2));

    // Shutdown stops the daemon; the serve thread joins.
    assert_eq!(two.roundtrip(&Request::Shutdown).unwrap(), Response::Bye);
    let accepted = daemon.join().unwrap().unwrap();
    assert!(accepted >= 2, "both clients accepted, got {accepted}");
}

#[test]
fn client_retry_rides_out_injected_connection_drops() {
    // The daemon drops the connection on the 2nd and 3rd line reads; the
    // retrying client reconnects and redelivers. The redelivered requests
    // are all idempotent (a token-carrying Open, then a Select on the
    // resulting open round), so the session ends up exactly once.
    let mut config = config();
    config.faults = FaultPlan::none()
        .on(FaultPoint::ConnectionRead, 2, FaultAction::Drop)
        .on(FaultPoint::ConnectionRead, 3, FaultAction::Drop);
    let service = Arc::new(Service::new(config).unwrap());
    let (addr, daemon) = spawn_daemon(Arc::clone(&service));
    let policy = RetryPolicy {
        attempts: 5,
        base_ms: 1,
        cap_ms: 5,
    };

    let mut client = Client::connect(addr).unwrap();
    let open = Request::Open {
        request: Some(77),
        entities: vec![spec()],
        k: None,
        budget: None,
        pc: None,
    };
    let Response::Opened { sessions } = client.roundtrip_retrying(&open, policy).unwrap() else {
        panic!("open failed");
    };
    let id = sessions[0].session;
    // This roundtrip eats both drops (each drop costs one reconnect).
    let Response::Round { tasks, .. } = client
        .roundtrip_retrying(&Request::Select { session: id }, policy)
        .unwrap()
    else {
        panic!("select failed");
    };
    assert_eq!(tasks.len(), 2);
    // Exactly one session exists despite the redeliveries.
    let Response::Metrics { metrics } = client
        .roundtrip_retrying(&Request::Metrics, policy)
        .unwrap()
    else {
        panic!("metrics failed");
    };
    assert_eq!(metrics.sessions, 1);
    assert_eq!(service.fault_plan().fired(), 2, "both drops must fire");

    assert_eq!(
        client
            .roundtrip_retrying(&Request::Shutdown, policy)
            .unwrap(),
        Response::Bye
    );
    daemon.join().unwrap().unwrap();
}

#[test]
fn silent_connections_are_closed_at_the_read_deadline() {
    let mut config = config();
    config.read_deadline_ms = Some(50);
    let service = Arc::new(Service::new(config).unwrap());
    let (addr, daemon) = spawn_daemon(service);

    // A client that connects and never speaks: the daemon hangs up.
    let mut silent = Client::connect(addr).unwrap();
    std::thread::sleep(std::time::Duration::from_millis(200));
    let err = silent.roundtrip(&Request::Metrics).unwrap_err();
    assert!(
        matches!(
            err.kind(),
            std::io::ErrorKind::UnexpectedEof
                | std::io::ErrorKind::ConnectionReset
                | std::io::ErrorKind::BrokenPipe
        ),
        "expected a closed connection, got {err:?}"
    );

    // A fresh, prompt connection is served normally.
    let mut prompt = Client::connect(addr).unwrap();
    assert!(matches!(
        prompt.roundtrip(&Request::Metrics).unwrap(),
        Response::Metrics { .. }
    ));
    assert_eq!(prompt.roundtrip(&Request::Shutdown).unwrap(), Response::Bye);
    daemon.join().unwrap().unwrap();
}

#[test]
fn mid_line_silence_is_reaped_at_the_deadline() {
    // A peer that trickles half a request and stalls must not park a
    // reactor slot forever: the loop's timer sweeps it at the deadline
    // exactly like a peer that never spoke, and the partial line is
    // discarded unanswered.
    use std::io::{Read, Write};

    let mut config = config();
    config.read_deadline_ms = Some(50);
    let service = Arc::new(Service::new(config).unwrap());
    let (addr, daemon) = spawn_daemon(service);

    let mut stalled = std::net::TcpStream::connect(addr).unwrap();
    stalled.write_all(b"{\"Metr").unwrap(); // no terminating newline
    std::thread::sleep(std::time::Duration::from_millis(200));
    let mut buf = [0u8; 64];
    match stalled.read(&mut buf) {
        Ok(0) => {} // clean EOF: the daemon hung up without replying
        Ok(n) => panic!("daemon answered a partial line with {:?}", &buf[..n]),
        Err(err) => assert!(
            matches!(
                err.kind(),
                std::io::ErrorKind::ConnectionReset | std::io::ErrorKind::BrokenPipe
            ),
            "expected a closed connection, got {err:?}"
        ),
    }

    let mut prompt = Client::connect(addr).unwrap();
    assert_eq!(prompt.roundtrip(&Request::Shutdown).unwrap(), Response::Bye);
    daemon.join().unwrap().unwrap();
}

#[test]
fn shutdown_closes_every_connection_socket() {
    // PR 7's handler-exit contract, re-verified on the event loop: when
    // the daemon stops, every live socket gets a transport-level
    // shutdown, so an idle peer observes EOF promptly instead of
    // blocking on a dead connection.
    use std::io::Read;

    let service = Arc::new(Service::new(config()).unwrap());
    let (addr, daemon) = spawn_daemon(service);

    // An idle bystander connection, and a second client that stops the
    // daemon.
    let mut idle = std::net::TcpStream::connect(addr).unwrap();
    idle.set_read_timeout(Some(std::time::Duration::from_secs(5)))
        .unwrap();
    let mut driver = Client::connect(addr).unwrap();
    assert_eq!(driver.roundtrip(&Request::Shutdown).unwrap(), Response::Bye);
    daemon.join().unwrap().unwrap();

    // The bystander's read resolves (EOF or reset) rather than hanging
    // until its own timeout: the daemon shut the socket down on exit.
    let mut buf = [0u8; 16];
    match idle.read(&mut buf) {
        Ok(0) => {}
        Ok(n) => panic!("unexpected bytes on an idle connection: {:?}", &buf[..n]),
        Err(err) => assert!(
            matches!(
                err.kind(),
                std::io::ErrorKind::ConnectionReset | std::io::ErrorKind::BrokenPipe
            ),
            "expected a closed connection, got {err:?}"
        ),
    }
}
