//! Deterministic chaos: kill the daemon at every durability fault point
//! and assert recovery is **bit-identical** to an uninterrupted run.
//!
//! The harness drives a fixed workload (open with an idempotency token,
//! then round-robin select/absorb to exhaustion with split batches)
//! against a durable service carrying a scheduled [`FaultPlan`]. When a
//! request unwinds with a [`SimulatedCrash`], the harness does exactly
//! what a supervisor would: drops the service value on the floor (no
//! drain, no destructor cleanup of the journal), boots a fresh
//! [`Service`] from the same durability directory — recovery itself may
//! crash again; the boot loop retries, sharing the plan's occurrence
//! counters — and **redelivers the failed request**, the at-least-once
//! contract every crowd client runs under.
//!
//! The final [`Request::Trace`] must equal the no-durability,
//! no-fault reference *on the encoded wire line*, i.e. byte for byte,
//! for every fault plan in the matrix (mid-journal-append, mid-apply =
//! mid-Absorb, mid-snapshot-write/-rename/-truncate, torn snapshot
//! writes, and multi-crash combinations) at worker-pool widths 1 and 4.
//! Each plan also asserts its faults actually fired — a kill point that
//! dead-codes away fails the suite instead of silently weakening it.

use crowdfusion_core::round::RoundConfig;
use crowdfusion_core::session::EntitySpec;
use crowdfusion_crowd::{AnswerReplay, Task, TaskId, UniformAccuracy, WorkerPool};
use crowdfusion_service::protocol::{Request, Response, WireAnswer};
use crowdfusion_service::{
    BudgetMode, DurabilityConfig, FaultAction, FaultPlan, FaultPoint, SelectorChoice, Service,
    ServiceConfig,
};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

const WORKERS: usize = 8;
const PC: f64 = 0.8;
const SEED: u64 = 23;

static NEXT_DIR: AtomicU64 = AtomicU64::new(0);

fn temp_dir(label: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "crowdfusion-chaos-{label}-{}-{}",
        std::process::id(),
        NEXT_DIR.fetch_add(1, Ordering::SeqCst)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn specs() -> Vec<EntitySpec> {
    let mut correlated = EntitySpec::simple(
        "a",
        vec![0.3, 0.6, 0.8, 0.45],
        vec![true, true, false, true],
    );
    correlated.groups = vec![vec![0, 1]];
    // Mixed method provenance: tagged specs must survive journal replay
    // and snapshot recovery exactly like untagged (pre-method) ones.
    correlated.method = Some("truthfinder".to_string());
    let mut composite = EntitySpec::simple("c", vec![0.7, 0.2, 0.55], vec![true, false, false]);
    composite.method = Some("per-attribute".to_string());
    vec![
        correlated,
        EntitySpec::simple("b", vec![0.5, 0.45], vec![false, true]),
        composite,
    ]
}

fn base_config(threads: usize) -> ServiceConfig {
    let mut config = ServiceConfig::new(
        SEED,
        RoundConfig::new(2, 6, PC).unwrap(),
        threads,
        SelectorChoice::Greedy,
    );
    // The whole chaos matrix runs on a non-default daemon method: crash
    // recovery must round-trip `serve --method` state like any other.
    config.method = "truthfinder".to_string();
    config
}

/// The supervisor: boots (and re-boots) services over one durability
/// directory, retrying when recovery itself is killed.
struct Supervisor {
    config: ServiceConfig,
    service: Option<Service>,
    boots: usize,
}

impl Supervisor {
    fn new(config: ServiceConfig) -> Supervisor {
        Supervisor {
            config,
            service: None,
            boots: 0,
        }
    }

    fn boot(&mut self) -> &Service {
        // Recovery can hit scheduled faults too (the compaction snapshot
        // passes the same write/rename/truncate points); each failed boot
        // is one more process death, so just keep restarting. The plan is
        // finite, so this terminates.
        for _ in 0..64 {
            self.boots += 1;
            match Service::new(self.config.clone()) {
                Ok(service) => {
                    self.service = Some(service);
                    return self.service.as_ref().unwrap();
                }
                Err(err) => {
                    assert!(
                        crowdfusion_service::fault::is_simulated_crash(&err),
                        "recovery died on a real error: {err}"
                    );
                }
            }
        }
        panic!("boot loop did not converge; fault plan fires forever?");
    }

    /// Sends `request`, redelivering it across as many crash/reboot
    /// cycles as it takes (at-least-once).
    fn deliver(&mut self, request: Request) -> Response {
        loop {
            if self.service.is_none() {
                self.boot();
            }
            match self.service.as_ref().unwrap().try_handle(request.clone()) {
                Ok(response) => return response,
                Err(_crash) => {
                    // Process death: the service value is dropped without
                    // any orderly shutdown.
                    self.service = None;
                }
            }
        }
    }
}

/// Drives the full workload through `deliver`, returning the encoded
/// final trace line (byte-level equality is the acceptance bar).
fn run_workload(mut deliver: impl FnMut(Request) -> Response) -> String {
    let specs = specs();
    let Response::Opened { sessions } = deliver(Request::Open {
        request: Some(1),
        entities: specs.clone(),
        k: None,
        budget: None,
        pc: None,
    }) else {
        panic!("open failed");
    };
    assert_eq!(sessions.len(), specs.len());
    let pool = WorkerPool::uniform(WORKERS, PC).unwrap();
    let model = UniformAccuracy::new(PC);
    let mut replays: Vec<AnswerReplay> = sessions
        .iter()
        .map(|s| AnswerReplay::from_seed(s.answer_seed))
        .collect();
    // The crowd-side answer cache: answers for a round are drawn from the
    // replay stream ONCE, keyed by (session, round), so a crash that
    // forces redelivery re-sends the same answers rather than drawing
    // fresh ones — which is exactly what a real crowd's completed
    // assignments are.
    let mut drawn: BTreeMap<(u64, usize), Vec<WireAnswer>> = BTreeMap::new();
    let mut live: Vec<bool> = vec![true; sessions.len()];
    while live.iter().any(|&l| l) {
        for (i, info) in sessions.iter().enumerate() {
            if !live[i] {
                continue;
            }
            let response = deliver(Request::Select {
                session: info.session,
            });
            let (round, tasks) = match response {
                Response::Round { round, tasks, .. } => (round, tasks),
                Response::Exhausted { .. } => {
                    live[i] = false;
                    continue;
                }
                other => panic!("unexpected select response {other:?}"),
            };
            let answers = drawn.entry((info.session, round)).or_insert_with(|| {
                let crowd_tasks: Vec<Task> = tasks
                    .iter()
                    .map(|t| Task {
                        id: TaskId(t.id),
                        prompt: t.prompt.clone(),
                        class: t.class,
                    })
                    .collect();
                let truths: Vec<bool> = tasks.iter().map(|t| specs[i].gold[t.fact]).collect();
                replays[i]
                    .answers(&pool, &model, &crowd_tasks, &truths)
                    .unwrap()
                    .iter()
                    .map(|a| WireAnswer {
                        task: a.task.0,
                        value: a.value,
                    })
                    .collect()
            });
            // Two partial deliveries per round (the streaming shape).
            let cut = answers.len().div_ceil(2);
            let batches: Vec<Vec<WireAnswer>> = [&answers[..cut], &answers[cut..]]
                .iter()
                .filter(|b| !b.is_empty())
                .map(|b| b.to_vec())
                .collect();
            for batch in batches {
                match deliver(Request::Absorb {
                    session: info.session,
                    answers: batch,
                }) {
                    Response::Absorbed { .. } => {}
                    other => panic!("unexpected absorb response {other:?}"),
                }
            }
        }
    }
    let Response::Trace { trace } = deliver(Request::Trace) else {
        panic!("trace failed");
    };
    crowdfusion_service::protocol::encode(&trace)
}

/// The uninterrupted, durability-free reference trace.
fn reference_trace(threads: usize) -> String {
    let service = Service::new(base_config(threads)).unwrap();
    run_workload(|request| service.handle(request))
}

/// One chaos scenario: the workload under `plan`, killed and recovered,
/// must match the reference byte for byte and fire exactly
/// `expect_fired` faults across `min_boots`+ daemon incarnations.
fn assert_recovers(label: &str, threads: usize, plan: FaultPlan, expect_fired: u64) {
    let reference = reference_trace(threads);
    let dir = temp_dir(label);
    let mut config = base_config(threads);
    let mut durability = DurabilityConfig::new(&dir);
    // A tight cadence so the snapshot path runs (and its fault points
    // arrive) many times within the small workload.
    durability.snapshot_every = 3;
    config.durability = Some(durability);
    config.faults = plan.clone();
    let mut supervisor = Supervisor::new(config);
    let recovered = run_workload(|request| supervisor.deliver(request));
    assert_eq!(
        recovered, reference,
        "[{label}] recovered trace must be byte-identical (threads = {threads})"
    );
    assert_eq!(
        plan.fired(),
        expect_fired,
        "[{label}] every scheduled fault must actually fire"
    );
    let expected_boots = 1 + expect_fired as usize;
    assert!(
        supervisor.boots >= expected_boots.min(2),
        "[{label}] expected recovery boots, saw {}",
        supervisor.boots
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// The kill-point matrix from the issue: mid-journal-append, mid-apply
/// (= mid-Absorb, since most journalled effects are absorbs), and every
/// mid-snapshot window, at pool widths 1 and 4.
#[test]
fn every_kill_point_recovers_bit_identically() {
    for threads in [1usize, 4] {
        for occurrence in [1u64, 2, 7] {
            assert_recovers(
                "journal-append",
                threads,
                FaultPlan::none().on(FaultPoint::JournalAppend, occurrence, FaultAction::Crash),
                1,
            );
            assert_recovers(
                "effect-apply",
                threads,
                FaultPlan::none().on(FaultPoint::EffectApply, occurrence, FaultAction::Crash),
                1,
            );
        }
        assert_recovers(
            "snapshot-write",
            threads,
            FaultPlan::none().on(FaultPoint::SnapshotWrite, 2, FaultAction::Crash),
            1,
        );
        assert_recovers(
            "snapshot-rename",
            threads,
            FaultPlan::none().on(FaultPoint::SnapshotRename, 2, FaultAction::Crash),
            1,
        );
        assert_recovers(
            "journal-truncate",
            threads,
            FaultPlan::none().on(FaultPoint::JournalTruncate, 2, FaultAction::Crash),
            1,
        );
    }
}

#[test]
fn torn_writes_recover_bit_identically() {
    for threads in [1usize, 4] {
        // A snapshot write that tears mid-file: recovery must fall back to
        // the previous snapshot + journal, not read the torn tmp.
        assert_recovers(
            "torn-snapshot",
            threads,
            FaultPlan::none().on(
                FaultPoint::SnapshotWrite,
                2,
                FaultAction::Torn { keep_bytes: 40 },
            ),
            1,
        );
        // A journal append that tears mid-frame: the torn tail must be
        // detected (checksum) and dropped, and the redelivered request
        // re-journalled cleanly.
        assert_recovers(
            "torn-journal",
            threads,
            FaultPlan::none().on(
                FaultPoint::JournalAppend,
                4,
                FaultAction::Torn { keep_bytes: 5 },
            ),
            1,
        );
    }
}

#[test]
fn repeated_crashes_in_one_run_still_recover() {
    for threads in [1usize, 4] {
        // Three deaths at three different windows of the same run — the
        // last one during a *recovery* incarnation's own snapshot path if
        // the cadence lands there; the shared occurrence counters make
        // the schedule deterministic either way.
        assert_recovers(
            "multi-crash",
            threads,
            FaultPlan::none()
                .on(FaultPoint::JournalAppend, 2, FaultAction::Crash)
                .on(FaultPoint::EffectApply, 5, FaultAction::Crash)
                .on(
                    FaultPoint::SnapshotWrite,
                    3,
                    FaultAction::Torn { keep_bytes: 11 },
                ),
            3,
        );
    }
}

/// The global-scheduler workload: everything flows through tokenised
/// `Schedule` requests (so crash redelivery is idempotent), rounds are
/// absorbed in two partial batches from the drawn-answer cache, and the
/// acceptance line is the final trace *plus* the shared-ledger
/// `BudgetStatus` — the recovered daemon must agree on who was admitted,
/// in what order, and what it cost, byte for byte.
fn run_global_workload(mut deliver: impl FnMut(Request) -> Response) -> String {
    let specs = specs();
    let Response::Opened { sessions } = deliver(Request::Open {
        request: Some(1),
        entities: specs.clone(),
        k: None,
        budget: None,
        pc: None,
    }) else {
        panic!("open failed");
    };
    let pool = WorkerPool::uniform(WORKERS, PC).unwrap();
    let model = UniformAccuracy::new(PC);
    let mut replays: Vec<AnswerReplay> = sessions
        .iter()
        .map(|s| AnswerReplay::from_seed(s.answer_seed))
        .collect();
    let index: BTreeMap<u64, usize> = sessions
        .iter()
        .enumerate()
        .map(|(i, s)| (s.session, i))
        .collect();
    let mut drawn: BTreeMap<(u64, usize), Vec<WireAnswer>> = BTreeMap::new();
    let mut token = 100u64;
    loop {
        token += 1;
        let (session, round, tasks) = match deliver(Request::Schedule {
            request: Some(token),
        }) {
            Response::NoWork { .. } => break,
            Response::Round {
                session,
                round,
                tasks,
            } => (session, round, tasks),
            other => panic!("unexpected schedule response {other:?}"),
        };
        assert!(!tasks.is_empty(), "fresh admissions always carry tasks");
        let i = index[&session];
        let answers = drawn.entry((session, round)).or_insert_with(|| {
            let crowd_tasks: Vec<Task> = tasks
                .iter()
                .map(|t| Task {
                    id: TaskId(t.id),
                    prompt: t.prompt.clone(),
                    class: t.class,
                })
                .collect();
            let truths: Vec<bool> = tasks.iter().map(|t| specs[i].gold[t.fact]).collect();
            replays[i]
                .answers(&pool, &model, &crowd_tasks, &truths)
                .unwrap()
                .iter()
                .map(|a| WireAnswer {
                    task: a.task.0,
                    value: a.value,
                })
                .collect()
        });
        let cut = answers.len().div_ceil(2);
        let batches: Vec<Vec<WireAnswer>> = [&answers[..cut], &answers[cut..]]
            .iter()
            .filter(|b| !b.is_empty())
            .map(|b| b.to_vec())
            .collect();
        for batch in batches {
            match deliver(Request::Absorb {
                session,
                answers: batch,
            }) {
                Response::Absorbed { .. } => {}
                other => panic!("unexpected absorb response {other:?}"),
            }
        }
    }
    let Response::Trace { trace } = deliver(Request::Trace) else {
        panic!("trace failed");
    };
    let budget = deliver(Request::BudgetStatus);
    format!(
        "{}\n{}",
        crowdfusion_service::protocol::encode(&trace),
        crowdfusion_service::protocol::encode(&budget)
    )
}

fn global_config(threads: usize) -> ServiceConfig {
    let mut config = base_config(threads);
    config.budget_mode = BudgetMode::Global;
    // Smaller than the sessions' combined demand (3 × 6), so the run
    // ends on a *drained pool*, pinning the exhaustion boundary too.
    config.global_budget = 10;
    config
}

/// Like [`assert_recovers`], for the global-scheduler workload.
fn assert_global_recovers(label: &str, threads: usize, plan: FaultPlan, expect_fired: u64) {
    let reference = {
        let service = Service::new(global_config(threads)).unwrap();
        run_global_workload(|request| service.handle(request))
    };
    let dir = temp_dir(label);
    let mut config = global_config(threads);
    let mut durability = DurabilityConfig::new(&dir);
    durability.snapshot_every = 3;
    config.durability = Some(durability);
    config.faults = plan.clone();
    let mut supervisor = Supervisor::new(config);
    let recovered = run_global_workload(|request| supervisor.deliver(request));
    assert_eq!(
        recovered, reference,
        "[{label}] recovered global-budget run must be byte-identical (threads = {threads})"
    );
    assert_eq!(
        plan.fired(),
        expect_fired,
        "[{label}] every scheduled fault must actually fire"
    );
    assert!(
        supervisor.boots >= 2,
        "[{label}] expected recovery boots, saw {}",
        supervisor.boots
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Tentpole acceptance (PR 10): the shared ledger, admission marks and
/// gain queue survive every kill window — mid-journal-append (the
/// `Schedule` effect may or may not be on disk), mid-apply (journalled
/// but unapplied: replay must re-open the round AND re-charge the
/// ledger), and mid-snapshot (the ledger rides the snapshot; the journal
/// tail must recharge only what follows it) — at pool widths 1 and 4.
#[test]
fn global_budget_mode_recovers_bit_identically() {
    for threads in [1usize, 4] {
        for occurrence in [2u64, 5] {
            assert_global_recovers(
                "global-journal-append",
                threads,
                FaultPlan::none().on(FaultPoint::JournalAppend, occurrence, FaultAction::Crash),
                1,
            );
            assert_global_recovers(
                "global-effect-apply",
                threads,
                FaultPlan::none().on(FaultPoint::EffectApply, occurrence, FaultAction::Crash),
                1,
            );
        }
        assert_global_recovers(
            "global-snapshot-write",
            threads,
            FaultPlan::none().on(FaultPoint::SnapshotWrite, 2, FaultAction::Crash),
            1,
        );
        assert_global_recovers(
            "global-multi-crash",
            threads,
            FaultPlan::none()
                .on(FaultPoint::JournalAppend, 3, FaultAction::Crash)
                .on(FaultPoint::EffectApply, 6, FaultAction::Crash)
                .on(
                    FaultPoint::SnapshotWrite,
                    2,
                    FaultAction::Torn { keep_bytes: 25 },
                ),
            3,
        );
    }
}

#[test]
fn kill_mid_workload_then_cold_restart_resumes_the_same_trace() {
    // Not a scheduled fault this time: stop driving halfway, drop the
    // daemon (kill -9 equivalent), boot a fresh one from the directory
    // and drive the REST of the workload. The combined trace must equal
    // the uninterrupted reference — the recovery path joins two half
    // runs seamlessly.
    let reference = reference_trace(2);
    let dir = temp_dir("cold-restart");
    let mut config = base_config(2);
    let mut durability = DurabilityConfig::new(&dir);
    durability.snapshot_every = 4;
    config.durability = Some(durability);

    let mut incarnation = Some(Service::new(config.clone()).unwrap());
    let mut requests_served = 0usize;
    let recovered = run_workload(|request| {
        requests_served += 1;
        if requests_served == 9 {
            // Unceremonious death between requests.
            incarnation = None;
            incarnation = Some(Service::new(config.clone()).unwrap());
        }
        incarnation.as_ref().unwrap().handle(request)
    });
    assert_eq!(recovered, reference);
    assert!(requests_served > 9, "the kill must land mid-workload");
    std::fs::remove_dir_all(&dir).ok();
}
