//! Snapshot/restore through the service verbs: a daemon killed mid-round
//! and restored from its snapshot file finishes with the exact trace an
//! uninterrupted daemon produces — which, by `tests/determinism.rs`, is
//! also the offline `run_sharded` trace.

use crowdfusion_core::round::RoundConfig;
use crowdfusion_core::session::EntitySpec;
use crowdfusion_crowd::{AnswerReplay, Task, TaskId, UniformAccuracy, WorkerPool};
use crowdfusion_service::protocol::{Request, Response, WireAnswer};
use crowdfusion_service::service::{SelectorChoice, ServiceConfig};
use crowdfusion_service::Service;

const WORKERS: usize = 8;
const PC: f64 = 0.8;

fn specs() -> Vec<EntitySpec> {
    vec![
        EntitySpec::simple("a", vec![0.3, 0.6, 0.8], vec![true, true, false]),
        EntitySpec::simple("b", vec![0.5, 0.45], vec![false, true]),
    ]
}

fn config() -> ServiceConfig {
    ServiceConfig::new(
        11,
        RoundConfig::new(2, 6, PC).unwrap(),
        2,
        SelectorChoice::Greedy,
    )
}

struct Driver {
    replays: Vec<AnswerReplay>,
    pool: WorkerPool,
    model: UniformAccuracy,
    specs: Vec<EntitySpec>,
}

impl Driver {
    fn new(seeds: &[u64]) -> Driver {
        Driver {
            replays: seeds.iter().map(|&s| AnswerReplay::from_seed(s)).collect(),
            pool: WorkerPool::uniform(WORKERS, PC).unwrap(),
            model: UniformAccuracy::new(PC),
            specs: specs(),
        }
    }

    /// Answers one session's open round from its replay stream.
    fn answers(
        &mut self,
        session: usize,
        tasks: &[crowdfusion_core::session::PublishedTask],
    ) -> Vec<WireAnswer> {
        let crowd_tasks: Vec<Task> = tasks
            .iter()
            .map(|t| Task {
                id: TaskId(t.id),
                prompt: t.prompt.clone(),
                class: t.class,
            })
            .collect();
        let truths: Vec<bool> = tasks
            .iter()
            .map(|t| self.specs[session].gold[t.fact])
            .collect();
        self.replays[session]
            .answers(&self.pool, &self.model, &crowd_tasks, &truths)
            .unwrap()
            .iter()
            .map(|a| WireAnswer {
                task: a.task.0,
                value: a.value,
            })
            .collect()
    }

    /// Runs every session to exhaustion on `service`.
    fn finish(&mut self, service: &Service, sessions: &[u64]) {
        let mut live: Vec<bool> = vec![true; sessions.len()];
        while live.iter().any(|&l| l) {
            for (i, &session) in sessions.iter().enumerate() {
                if !live[i] {
                    continue;
                }
                match service.handle(Request::Select { session }) {
                    Response::Round { tasks, .. } => {
                        let answers = self.answers(i, &tasks);
                        service.handle(Request::Absorb { session, answers });
                    }
                    Response::Exhausted { .. } => live[i] = false,
                    other => panic!("unexpected response {other:?}"),
                }
            }
        }
    }
}

#[test]
fn restored_daemon_finishes_with_the_uninterrupted_trace() {
    let dir = std::env::temp_dir().join("crowdfusion-service-snapshot-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("registry.json").to_string_lossy().into_owned();

    // Reference: an uninterrupted daemon.
    let reference = Service::new(config()).unwrap();
    let Response::Opened { sessions } = reference.handle(Request::Open {
        request: None,
        entities: specs(),
        k: None,
        budget: None,
        pc: None,
    }) else {
        panic!("open failed");
    };
    let seeds: Vec<u64> = sessions.iter().map(|s| s.answer_seed).collect();
    let ids: Vec<u64> = sessions.iter().map(|s| s.session).collect();
    let mut driver = Driver::new(&seeds);
    driver.finish(&reference, &ids);
    let Response::Trace { trace: expected } = reference.handle(Request::Trace) else {
        panic!("trace failed");
    };

    // Interrupted: same open, one round driven, then a *partial* absorb on
    // session 0 — snapshot taken mid-round, daemon dropped.
    let victim = Service::new(config()).unwrap();
    let Response::Opened { sessions } = victim.handle(Request::Open {
        request: None,
        entities: specs(),
        k: None,
        budget: None,
        pc: None,
    }) else {
        panic!("open failed");
    };
    assert_eq!(
        seeds,
        sessions.iter().map(|s| s.answer_seed).collect::<Vec<u64>>(),
        "same master seed, same seed schedule"
    );
    let mut driver = Driver::new(&seeds);
    let Response::Round { tasks, .. } = victim.handle(Request::Select { session: ids[0] }) else {
        panic!("round expected");
    };
    let answers = driver.answers(0, &tasks);
    let (first, rest) = answers.split_at(1);
    let Response::Absorbed { pending, .. } = victim.handle(Request::Absorb {
        session: ids[0],
        answers: first.to_vec(),
    }) else {
        panic!("absorb failed");
    };
    assert!(pending > 0, "the snapshot must catch an open round");
    let Response::Snapshotted {
        sessions: count, ..
    } = victim.handle(Request::Snapshot { path: path.clone() })
    else {
        panic!("snapshot failed");
    };
    assert_eq!(count, 2);
    drop(victim);

    // A fresh daemon — different construction seed, so only the snapshot
    // can explain agreement — restores and finishes.
    let mut cfg = config();
    cfg.seed = 999;
    let revived = Service::new(cfg).unwrap();
    let Response::Restored {
        sessions: count, ..
    } = revived.handle(Request::Restore { path: path.clone() })
    else {
        panic!("restore failed");
    };
    assert_eq!(count, 2);
    // Deliver the rest of the interrupted round (duplicating the answer
    // that was already absorbed — it must be rejected, not re-applied)...
    let mut replayed: Vec<WireAnswer> = first.to_vec();
    replayed.extend_from_slice(rest);
    let Response::Absorbed {
        accepted,
        duplicates,
        pending,
        ..
    } = revived.handle(Request::Absorb {
        session: ids[0],
        answers: replayed,
    })
    else {
        panic!("absorb failed");
    };
    assert_eq!(duplicates, 1);
    assert_eq!(accepted, rest.len());
    assert_eq!(pending, 0);
    // ...then run everything to exhaustion. The driver's replay streams
    // continue from where the victim's stopped: the partial round's
    // answers were already drawn above, and the restored RNG state inside
    // the snapshot keeps selection aligned.
    driver.finish(&revived, &ids);
    let Response::Trace { trace } = revived.handle(Request::Trace) else {
        panic!("trace failed");
    };
    assert_eq!(trace, expected);

    // The restored daemon's future opens continue the snapshotted seed
    // schedule, not the fresh daemon's.
    let late_spec = EntitySpec::simple("c", vec![0.5], vec![true]);
    let Response::Opened {
        sessions: restored_open,
    } = revived.handle(Request::Open {
        request: None,
        entities: vec![late_spec.clone()],
        k: None,
        budget: None,
        pc: None,
    })
    else {
        panic!("open failed");
    };
    let uninterrupted = Service::new(config()).unwrap();
    uninterrupted.handle(Request::Open {
        request: None,
        entities: specs(),
        k: None,
        budget: None,
        pc: None,
    });
    let Response::Opened {
        sessions: expected_open,
    } = uninterrupted.handle(Request::Open {
        request: None,
        entities: vec![late_spec],
        k: None,
        budget: None,
        pc: None,
    })
    else {
        panic!("open failed");
    };
    std::fs::remove_file(&path).ok();
    assert_eq!(restored_open, expected_open);
}
