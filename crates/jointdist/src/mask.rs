//! Bitmask types for truth assignments and variable subsets.
//!
//! Both types wrap a `u64`, supporting up to 64 variables. The distinction
//! between *assignments* (bit `i` is the truth value of variable `i`) and
//! *variable sets* (bit `i` means variable `i` is a member) is kept at the
//! type level because mixing them up is an easy and silent bug.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A truth assignment to variables `0..n`: bit `i` set means variable `i` is
/// judged *true*. This is what the paper calls an *output* `o_i` (Table II)
/// and, for selected tasks, an *answer set* `Ans_i` (Table IV).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct Assignment(pub u64);

/// A set of variable indices: bit `i` set means variable `i` is a member.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct VarSet(pub u64);

impl Assignment {
    /// The all-false assignment.
    pub const ALL_FALSE: Assignment = Assignment(0);

    /// Returns the truth value assigned to variable `var`.
    #[inline]
    pub fn get(self, var: usize) -> bool {
        debug_assert!(var < 64);
        (self.0 >> var) & 1 == 1
    }

    /// Returns a copy with variable `var` set to `value`.
    #[inline]
    #[must_use]
    pub fn with(self, var: usize, value: bool) -> Assignment {
        debug_assert!(var < 64);
        if value {
            Assignment(self.0 | (1 << var))
        } else {
            Assignment(self.0 & !(1 << var))
        }
    }

    /// Number of variables assigned true.
    #[inline]
    pub fn count_true(self) -> u32 {
        self.0.count_ones()
    }

    /// Hamming distance to another assignment, restricted to `vars`.
    ///
    /// This is the `#Diff` count of Equation 2 in the paper: the number of
    /// selected facts on which two judgments disagree.
    #[inline]
    pub fn hamming_on(self, other: Assignment, vars: VarSet) -> u32 {
        ((self.0 ^ other.0) & vars.0).count_ones()
    }

    /// Restricts the assignment to the variables in `vars`, compacting the
    /// surviving bits into the low-order positions (in increasing variable
    /// order). The result indexes a dense table of size `2^|vars|`.
    ///
    /// This is a software `PEXT` (parallel bit extract).
    #[inline]
    pub fn extract(self, vars: VarSet) -> u64 {
        let mut src = self.0 & vars.0;
        let mut mask = vars.0;
        let mut out = 0u64;
        let mut out_bit = 0u32;
        while mask != 0 {
            let low = mask & mask.wrapping_neg();
            if src & low != 0 {
                out |= 1 << out_bit;
            }
            src &= !low;
            mask &= !low;
            out_bit += 1;
        }
        out
    }

    /// Inverse of [`Assignment::extract`]: scatters the low `|vars|` bits of
    /// `compact` into the positions selected by `vars` (software `PDEP`).
    #[inline]
    pub fn deposit(compact: u64, vars: VarSet) -> Assignment {
        let mut mask = vars.0;
        let mut out = 0u64;
        let mut in_bit = 0u32;
        while mask != 0 {
            let low = mask & mask.wrapping_neg();
            if (compact >> in_bit) & 1 == 1 {
                out |= low;
            }
            mask &= !low;
            in_bit += 1;
        }
        Assignment(out)
    }

    /// Renders the assignment as a `T`/`F` string over `n` variables,
    /// variable 0 first — the row format of the paper's Tables II and IV.
    pub fn display(self, n: usize) -> String {
        (0..n)
            .map(|i| if self.get(i) { 'T' } else { 'F' })
            .collect()
    }
}

impl VarSet {
    /// The empty variable set.
    pub const EMPTY: VarSet = VarSet(0);

    /// A set containing all of `0..n`.
    #[inline]
    pub fn all(n: usize) -> VarSet {
        debug_assert!(n <= 64);
        if n == 64 {
            VarSet(u64::MAX)
        } else {
            VarSet((1u64 << n) - 1)
        }
    }

    /// A singleton set.
    #[inline]
    pub fn single(var: usize) -> VarSet {
        debug_assert!(var < 64);
        VarSet(1 << var)
    }

    /// Builds a set from an iterator of variable indices.
    pub fn from_vars<I: IntoIterator<Item = usize>>(vars: I) -> VarSet {
        let mut bits = 0u64;
        for v in vars {
            debug_assert!(v < 64);
            bits |= 1 << v;
        }
        VarSet(bits)
    }

    /// Number of member variables.
    #[inline]
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Membership test.
    #[inline]
    pub fn contains(self, var: usize) -> bool {
        debug_assert!(var < 64);
        (self.0 >> var) & 1 == 1
    }

    /// Set union.
    #[inline]
    #[must_use]
    pub fn union(self, other: VarSet) -> VarSet {
        VarSet(self.0 | other.0)
    }

    /// Set intersection.
    #[inline]
    #[must_use]
    pub fn intersect(self, other: VarSet) -> VarSet {
        VarSet(self.0 & other.0)
    }

    /// Set difference `self \ other`.
    #[inline]
    #[must_use]
    pub fn difference(self, other: VarSet) -> VarSet {
        VarSet(self.0 & !other.0)
    }

    /// Inserts a variable, returning the extended set.
    #[inline]
    #[must_use]
    pub fn insert(self, var: usize) -> VarSet {
        debug_assert!(var < 64);
        VarSet(self.0 | (1 << var))
    }

    /// Removes a variable, returning the shrunk set.
    #[inline]
    #[must_use]
    pub fn remove(self, var: usize) -> VarSet {
        debug_assert!(var < 64);
        VarSet(self.0 & !(1 << var))
    }

    /// Iterates member variable indices in increasing order.
    pub fn iter(self) -> VarSetIter {
        VarSetIter(self.0)
    }

    /// Collects member variable indices in increasing order.
    pub fn to_vec(self) -> Vec<usize> {
        self.iter().collect()
    }
}

impl fmt::Display for VarSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, v) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "f{v}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<usize> for VarSet {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        VarSet::from_vars(iter)
    }
}

/// Iterator over the member variables of a [`VarSet`].
#[derive(Debug, Clone)]
pub struct VarSetIter(u64);

impl Iterator for VarSetIter {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        if self.0 == 0 {
            None
        } else {
            let v = self.0.trailing_zeros() as usize;
            self.0 &= self.0 - 1;
            Some(v)
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.0.count_ones() as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for VarSetIter {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assignment_get_with_roundtrip() {
        let a = Assignment::ALL_FALSE.with(3, true).with(0, true);
        assert!(a.get(0));
        assert!(!a.get(1));
        assert!(a.get(3));
        assert_eq!(a.count_true(), 2);
        let b = a.with(3, false);
        assert!(!b.get(3));
        assert_eq!(b.count_true(), 1);
    }

    #[test]
    fn hamming_restricted_counts_only_selected() {
        let a = Assignment(0b1010);
        let b = Assignment(0b0110);
        // Differ in bits 2 and 3.
        assert_eq!(a.hamming_on(b, VarSet::all(4)), 2);
        assert_eq!(a.hamming_on(b, VarSet::from_vars([2])), 1);
        assert_eq!(a.hamming_on(b, VarSet::from_vars([0, 1])), 0);
    }

    #[test]
    fn extract_compacts_bits_in_order() {
        // vars {1, 3}: assignment bits (b3, b1) -> compact (bit1=b3, bit0=b1)
        let vars = VarSet::from_vars([1, 3]);
        assert_eq!(Assignment(0b1010).extract(vars), 0b11);
        assert_eq!(Assignment(0b1000).extract(vars), 0b10);
        assert_eq!(Assignment(0b0010).extract(vars), 0b01);
        assert_eq!(Assignment(0b0101).extract(vars), 0b00);
    }

    #[test]
    fn deposit_inverts_extract() {
        let vars = VarSet::from_vars([0, 2, 5]);
        for compact in 0..8u64 {
            let scattered = Assignment::deposit(compact, vars);
            assert_eq!(scattered.extract(vars), compact);
            // No stray bits outside the set.
            assert_eq!(scattered.0 & !vars.0, 0);
        }
    }

    #[test]
    fn varset_all_and_membership() {
        let s = VarSet::all(5);
        assert_eq!(s.len(), 5);
        assert!(s.contains(0) && s.contains(4));
        assert!(!s.contains(5));
        assert_eq!(VarSet::all(64).len(), 64);
    }

    #[test]
    fn varset_algebra() {
        let a = VarSet::from_vars([0, 1, 2]);
        let b = VarSet::from_vars([2, 3]);
        assert_eq!(a.union(b), VarSet::from_vars([0, 1, 2, 3]));
        assert_eq!(a.intersect(b), VarSet::from_vars([2]));
        assert_eq!(a.difference(b), VarSet::from_vars([0, 1]));
        assert_eq!(a.insert(5).len(), 4);
        assert_eq!(a.remove(0).len(), 2);
        assert!(VarSet::EMPTY.is_empty());
    }

    #[test]
    fn varset_iteration_in_order() {
        let s = VarSet::from_vars([7, 1, 4]);
        assert_eq!(s.to_vec(), vec![1, 4, 7]);
        assert_eq!(s.iter().len(), 3);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Assignment(0b0101).display(4), "TFTF");
        assert_eq!(VarSet::from_vars([0, 2]).to_string(), "{f0, f2}");
    }
}
