//! Exact sampling of ground-truth assignments from a [`JointDist`], and
//! sampled *construction* of sparse approximations for large variable
//! counts.

use crate::dist::JointDist;
use crate::error::JointError;
use crate::mask::Assignment;
use rand::Rng;
use std::collections::BTreeMap;

impl JointDist {
    /// Draws one assignment from the distribution.
    ///
    /// Used by the experiment harness to draw a hidden ground truth before
    /// simulating crowd answers against it.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Assignment {
        let u: f64 = rng.gen();
        let mut acc = 0.0;
        for (a, p) in self.iter() {
            acc += p;
            if u < acc {
                return a;
            }
        }
        // Floating-point slack: fall back to the last support entry.
        self.entries()
            .last()
            .map(|&(a, _)| a)
            .unwrap_or(Assignment::ALL_FALSE)
    }

    /// Draws `count` independent assignments.
    pub fn sample_many<R: Rng + ?Sized>(&self, rng: &mut R, count: usize) -> Vec<Assignment> {
        (0..count).map(|_| self.sample(rng)).collect()
    }

    /// Builds a **sparse approximation** of the product distribution with
    /// the given marginals, for variable counts beyond
    /// [`crate::MAX_DENSE_VARS`] (up to 64).
    ///
    /// `draws` assignments are sampled from the exact product distribution
    /// (bit by bit) and the empirical histogram of the draws becomes the
    /// distribution — a plain Monte-Carlo approximation whose marginals are
    /// unbiased with error `O(1/√draws)`. (Weighting the sampled support by
    /// exact product probabilities instead would condition on the support
    /// and bias every marginal toward the mode.)
    pub fn independent_sparse<R: Rng + ?Sized>(
        marginals: &[f64],
        draws: usize,
        rng: &mut R,
    ) -> Result<JointDist, JointError> {
        let n = marginals.len();
        if n > 64 {
            return Err(JointError::TooManyVariables {
                requested: n,
                limit: 64,
            });
        }
        if draws == 0 {
            return Err(JointError::EmptySupport);
        }
        for (var, &p) in marginals.iter().enumerate() {
            if !(0.0..=1.0).contains(&p) || !p.is_finite() {
                return Err(JointError::MarginalOutOfRange { var, value: p });
            }
        }
        let mut support: BTreeMap<Assignment, u64> = BTreeMap::new();
        for _ in 0..draws {
            let mut a = Assignment::ALL_FALSE;
            for (var, &p) in marginals.iter().enumerate() {
                a = a.with(var, rng.gen::<f64>() < p);
            }
            *support.entry(a).or_insert(0) += 1;
        }
        JointDist::from_weights(n, support.into_iter().map(|(a, count)| (a, count as f64)))
    }

    /// Builds a **sparse approximation** of this distribution pushed
    /// through a per-variable binary symmetric channel with per-bit
    /// correctness `correct` — the sparse counterpart of the dense full
    /// answer joint distribution (the CrowdFusion paper's Table IV) for
    /// variable counts beyond [`crate::MAX_DENSE_VARS`].
    ///
    /// `draws` (ground truth, noisy observation) pairs are sampled — a
    /// truth assignment from `self`, then each bit flipped independently
    /// with probability `1 − correct` — and the empirical histogram of the
    /// observations becomes the distribution. As with
    /// [`JointDist::independent_sparse`], the histogram is an unbiased
    /// Monte-Carlo approximation with error `O(1/√draws)`; weighting the
    /// sampled support by exact channel probabilities instead would
    /// condition on the support and bias the result toward the mode.
    ///
    /// `correct = 1` reproduces `self`'s own support (up to sampling of
    /// the truth); `correct = 0.5` converges on the uniform distribution.
    pub fn noisy_sparse<R: Rng + ?Sized>(
        &self,
        correct: f64,
        draws: usize,
        rng: &mut R,
    ) -> Result<JointDist, JointError> {
        if !(0.0..=1.0).contains(&correct) || !correct.is_finite() {
            return Err(JointError::InvalidProbability(correct));
        }
        if draws == 0 {
            return Err(JointError::EmptySupport);
        }
        let n = self.num_vars();
        let mut support: BTreeMap<Assignment, u64> = BTreeMap::new();
        for _ in 0..draws {
            let truth = self.sample(rng);
            let mut observed = truth;
            for var in 0..n {
                if rng.gen::<f64>() >= correct {
                    observed = observed.with(var, !observed.get(var));
                }
            }
            *support.entry(observed).or_insert(0) += 1;
        }
        JointDist::from_weights(n, support.into_iter().map(|(a, count)| (a, count as f64)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn point_mass_always_sampled() {
        let d = JointDist::certain(3, Assignment(0b101)).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..32 {
            assert_eq!(d.sample(&mut rng), Assignment(0b101));
        }
    }

    #[test]
    fn empirical_frequencies_converge() {
        let d = JointDist::from_weights(
            2,
            [
                (Assignment(0b00), 0.1),
                (Assignment(0b01), 0.2),
                (Assignment(0b11), 0.7),
            ],
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(42);
        let n = 40_000;
        let samples = d.sample_many(&mut rng, n);
        let freq = |a: Assignment| samples.iter().filter(|&&s| s == a).count() as f64 / n as f64;
        assert!((freq(Assignment(0b00)) - 0.1).abs() < 0.01);
        assert!((freq(Assignment(0b01)) - 0.2).abs() < 0.01);
        assert!((freq(Assignment(0b11)) - 0.7).abs() < 0.01);
        assert_eq!(freq(Assignment(0b10)), 0.0);
    }

    #[test]
    fn sampling_is_deterministic_under_seed() {
        let d = JointDist::uniform(4).unwrap();
        let a = d.sample_many(&mut StdRng::seed_from_u64(7), 16);
        let b = d.sample_many(&mut StdRng::seed_from_u64(7), 16);
        assert_eq!(a, b);
    }

    #[test]
    fn independent_sparse_small_n_matches_exact() {
        // With enough draws on a small n the sparse construction recovers
        // the full support and the exact probabilities.
        let marginals = [0.3, 0.7, 0.5];
        let exact = JointDist::independent(&marginals).unwrap();
        let sparse =
            JointDist::independent_sparse(&marginals, 200_000, &mut StdRng::seed_from_u64(1))
                .unwrap();
        assert_eq!(sparse.support_size(), 8);
        for (a, p) in exact.iter() {
            assert!(
                (sparse.prob(a) - p).abs() < 0.01,
                "probability mismatch at {a:?}: {} vs {p}",
                sparse.prob(a)
            );
        }
    }

    #[test]
    fn independent_sparse_handles_forty_variables() {
        let marginals: Vec<f64> = (0..40).map(|i| 0.2 + 0.015 * i as f64).collect();
        let d = JointDist::independent_sparse(&marginals, 4_096, &mut StdRng::seed_from_u64(9))
            .unwrap();
        assert_eq!(d.num_vars(), 40);
        assert!(d.support_size() <= 4_096);
        assert!((d.total_mass() - 1.0).abs() < 1e-9);
        // Marginals roughly follow the targets (sparse approximation).
        let got = d.marginals();
        let mean_err: f64 = got
            .iter()
            .zip(&marginals)
            .map(|(g, m)| (g - m).abs())
            .sum::<f64>()
            / 40.0;
        assert!(mean_err < 0.03, "mean marginal error {mean_err}");
    }

    #[test]
    fn noisy_sparse_converges_to_dense_answer_distribution() {
        // Against the exact channel push-forward on a small example: the
        // answer joint P(Ans) = Σ_o P(o) pc^#Same (1-pc)^#Diff.
        let d = JointDist::from_weights(
            2,
            [
                (Assignment(0b00), 0.1),
                (Assignment(0b01), 0.3),
                (Assignment(0b11), 0.6),
            ],
        )
        .unwrap();
        let pc = 0.8;
        let sparse = d
            .noisy_sparse(pc, 120_000, &mut StdRng::seed_from_u64(5))
            .unwrap();
        for pattern in 0u64..4 {
            let exact: f64 = d
                .iter()
                .map(|(o, p)| {
                    let diff = (o.0 ^ pattern).count_ones() as i32;
                    p * pc.powi(2 - diff) * (1.0 - pc).powi(diff)
                })
                .sum();
            let got = sparse.prob(Assignment(pattern));
            assert!(
                (got - exact).abs() < 0.01,
                "pattern {pattern:02b}: {got} vs {exact}"
            );
        }
    }

    #[test]
    fn noisy_sparse_identity_channel_resamples_support() {
        let d = JointDist::from_weights(3, [(Assignment(0b101), 3.0), (Assignment(0b010), 1.0)])
            .unwrap();
        let s = d
            .noisy_sparse(1.0, 10_000, &mut StdRng::seed_from_u64(2))
            .unwrap();
        assert!(s.support_size() <= 2);
        assert!((s.prob(Assignment(0b101)) - 0.75).abs() < 0.02);
    }

    #[test]
    fn noisy_sparse_handles_forty_variables() {
        let marginals: Vec<f64> = (0..40).map(|i| 0.3 + 0.01 * i as f64).collect();
        let d = JointDist::independent_sparse(&marginals, 2_048, &mut StdRng::seed_from_u64(1))
            .unwrap();
        let s = d
            .noisy_sparse(0.9, 4_096, &mut StdRng::seed_from_u64(3))
            .unwrap();
        assert_eq!(s.num_vars(), 40);
        assert!(s.support_size() <= 4_096);
        assert!((s.total_mass() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn noisy_sparse_validates() {
        let d = JointDist::uniform(2).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        assert!(d.noisy_sparse(1.5, 100, &mut rng).is_err());
        assert!(d.noisy_sparse(f64::NAN, 100, &mut rng).is_err());
        assert!(d.noisy_sparse(0.8, 0, &mut rng).is_err());
    }

    #[test]
    fn independent_sparse_validates() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(JointDist::independent_sparse(&[0.5; 65], 100, &mut rng).is_err());
        assert!(JointDist::independent_sparse(&[0.5], 0, &mut rng).is_err());
        assert!(JointDist::independent_sparse(&[1.5], 10, &mut rng).is_err());
    }
}
