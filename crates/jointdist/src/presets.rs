//! Ready-made distributions, including the paper's running example.

use crate::dist::JointDist;
use crate::mask::Assignment;

/// The running example of the CrowdFusion paper (Tables I–II): four facts
/// about Hong Kong with the 16-row output joint distribution.
///
/// Variable mapping: `f1..f4` of the paper are variables `0..3`. Row `o_i`
/// of Table II orders judgments as `(f1, f2, f3, f4)` with `f4` varying
/// fastest, i.e. `o1 = FFFF`, `o2 = FFFT`, …, `o16 = TTTT`.
///
/// The marginals of this distribution are the paper's Table I values:
/// `P(f1) = 0.50`, `P(f2) = 0.63`, `P(f3) = 0.58`, `P(f4) = 0.49`.
pub fn paper_running_example() -> JointDist {
    const PROBS: [f64; 16] = [
        0.03, 0.06, 0.07, 0.04, 0.09, 0.01, 0.11, 0.09, 0.04, 0.04, 0.04, 0.05, 0.06, 0.09, 0.07,
        0.11,
    ];
    let entries = PROBS.iter().enumerate().map(|(i, &p)| {
        let mut a = Assignment::ALL_FALSE;
        for v in 0..4 {
            if (i >> (3 - v)) & 1 == 1 {
                a = a.with(v, true);
            }
        }
        (a, p)
    });
    JointDist::from_weights(4, entries).expect("running example is well-formed")
}

/// Human-readable fact labels for [`paper_running_example`], in variable
/// order (Table I of the paper).
pub fn paper_running_example_labels() -> [(&'static str, &'static str, &'static str); 4] {
    [
        ("Hong Kong", "Continent", "Asia"),
        ("Hong Kong", "Population", ">= 500,000"),
        ("Hong Kong", "Major Ethnic Group", "Chinese"),
        ("Hong Kong", "Continent", "Europe"),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_example_is_normalised_with_table_marginals() {
        let d = paper_running_example();
        assert_eq!(d.num_vars(), 4);
        assert_eq!(d.support_size(), 16);
        assert!((d.total_mass() - 1.0).abs() < 1e-12);
        let m = d.marginals();
        for (got, want) in m.iter().zip([0.50, 0.63, 0.58, 0.49]) {
            assert!((got - want).abs() < 1e-9, "marginal {got} != {want}");
        }
    }

    #[test]
    fn specific_rows_match_table_two() {
        let d = paper_running_example();
        // o1 = FFFF -> 0.03
        assert!((d.prob(Assignment(0b0000)) - 0.03).abs() < 1e-12);
        // o2 = FFFT (only f4) -> 0.06; f4 is variable 3.
        assert!((d.prob(Assignment(0b1000)) - 0.06).abs() < 1e-12);
        // o9 = TFFF (only f1) -> 0.04; f1 is variable 0.
        assert!((d.prob(Assignment(0b0001)) - 0.04).abs() < 1e-12);
        // o16 = TTTT -> 0.11
        assert!((d.prob(Assignment(0b1111)) - 0.11).abs() < 1e-12);
    }

    #[test]
    fn labels_align_with_variables() {
        let labels = paper_running_example_labels();
        assert_eq!(labels[0].1, "Continent");
        assert_eq!(labels[3].2, "Europe");
    }
}
