//! Shannon-entropy helpers (all in bits, log base 2).

/// Entropy of a Bernoulli variable with success probability `p`, in bits.
///
/// This is the paper's `H(Crowd)` (Equation 1) when `p = Pc`:
/// `H(Crowd) = −Pc·log(Pc) − (1−Pc)·log(1−Pc)`.
#[inline]
pub fn binary_entropy(p: f64) -> f64 {
    debug_assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
    plogp(p) + plogp(1.0 - p)
}

/// Entropy of an already-normalised probability vector, in bits.
/// Zero probabilities contribute zero (the `0·log 0 = 0` convention).
pub fn entropy_of_probs(probs: impl IntoIterator<Item = f64>) -> f64 {
    probs.into_iter().map(plogp).sum()
}

/// Entropy of an *unnormalised* non-negative weight vector, in bits.
///
/// Computed without materialising the normalised vector:
/// `H = log2(W) − Σ w·log2(w) / W` where `W = Σ w`. Returns 0 for empty or
/// zero-mass input.
pub fn entropy_of_weights(weights: impl IntoIterator<Item = f64>) -> f64 {
    let mut total = 0.0f64;
    let mut wlogw = 0.0f64;
    for w in weights {
        debug_assert!(w >= 0.0 && w.is_finite(), "invalid weight {w}");
        if w > 0.0 {
            total += w;
            wlogw += w * w.log2();
        }
    }
    if total <= 0.0 {
        0.0
    } else {
        (total.log2() - wlogw / total).max(0.0)
    }
}

#[inline]
fn plogp(p: f64) -> f64 {
    if p <= 0.0 {
        0.0
    } else {
        -p * p.log2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn binary_entropy_extremes_and_peak() {
        assert!(close(binary_entropy(0.0), 0.0));
        assert!(close(binary_entropy(1.0), 0.0));
        assert!(close(binary_entropy(0.5), 1.0));
        // Symmetry.
        assert!(close(binary_entropy(0.3), binary_entropy(0.7)));
    }

    #[test]
    fn crowd_entropy_pc08_matches_paper_model() {
        // H(Crowd) for Pc = 0.8 ≈ 0.7219 bits.
        let h = binary_entropy(0.8);
        assert!((h - 0.721928).abs() < 1e-5);
    }

    #[test]
    fn entropy_of_probs_uniform() {
        let h = entropy_of_probs(vec![0.25; 4]);
        assert!(close(h, 2.0));
        assert!(close(entropy_of_probs([1.0]), 0.0));
        assert!(close(entropy_of_probs([0.0, 1.0]), 0.0));
    }

    #[test]
    fn entropy_of_weights_matches_normalised() {
        let w = [3.0, 1.0, 4.0, 0.0];
        let total: f64 = w.iter().sum();
        let h1 = entropy_of_weights(w);
        let h2 = entropy_of_probs(w.iter().map(|x| x / total));
        assert!(close(h1, h2));
    }

    #[test]
    fn entropy_of_weights_degenerate() {
        assert!(close(entropy_of_weights(std::iter::empty()), 0.0));
        assert!(close(entropy_of_weights([0.0, 0.0]), 0.0));
        assert!(close(entropy_of_weights([7.0]), 0.0));
    }
}
