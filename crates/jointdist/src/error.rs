//! Error type shared by all fallible operations in this crate.

use std::fmt;

/// Errors produced while constructing or transforming joint distributions.
#[derive(Debug, Clone, PartialEq)]
pub enum JointError {
    /// The requested number of variables exceeds [`crate::MAX_DENSE_VARS`]
    /// (for dense enumeration) or 64 (the hard mask width limit).
    TooManyVariables {
        /// Number of variables requested.
        requested: usize,
        /// Maximum supported for the attempted operation.
        limit: usize,
    },
    /// A variable index was out of range for the distribution.
    VariableOutOfRange {
        /// Offending variable index.
        var: usize,
        /// Number of variables in the distribution.
        n: usize,
    },
    /// A probability was negative or non-finite.
    InvalidProbability(f64),
    /// The distribution (or reweighted distribution) has zero total mass and
    /// cannot be normalised.
    ZeroMass,
    /// The distribution has an empty support.
    EmptySupport,
    /// A marginal probability passed to a builder was outside `[0, 1]`.
    MarginalOutOfRange {
        /// Variable whose marginal was invalid.
        var: usize,
        /// The invalid value.
        value: f64,
    },
    /// A factor referenced fewer than the required number of variables.
    DegenerateFactor(&'static str),
}

impl fmt::Display for JointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JointError::TooManyVariables { requested, limit } => write!(
                f,
                "{requested} variables requested but at most {limit} are supported"
            ),
            JointError::VariableOutOfRange { var, n } => {
                write!(f, "variable index {var} out of range for {n} variables")
            }
            JointError::InvalidProbability(p) => {
                write!(f, "invalid probability {p}: must be finite and >= 0")
            }
            JointError::ZeroMass => write!(f, "distribution has zero total mass"),
            JointError::EmptySupport => write!(f, "distribution support is empty"),
            JointError::MarginalOutOfRange { var, value } => {
                write!(f, "marginal for variable {var} is {value}, outside [0, 1]")
            }
            JointError::DegenerateFactor(what) => write!(f, "degenerate factor: {what}"),
        }
    }
}

impl std::error::Error for JointError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = JointError::TooManyVariables {
            requested: 80,
            limit: 64,
        };
        assert!(e.to_string().contains("80"));
        assert!(e.to_string().contains("64"));

        let e = JointError::VariableOutOfRange { var: 7, n: 4 };
        assert!(e.to_string().contains('7'));
        assert!(e.to_string().contains('4'));

        let e = JointError::MarginalOutOfRange { var: 2, value: 1.5 };
        assert!(e.to_string().contains("1.5"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>(_: &E) {}
        assert_err(&JointError::ZeroMass);
    }
}
