//! Sparse joint probability distributions over Bernoulli fact variables.
//!
//! This crate is the probability substrate of the CrowdFusion reproduction
//! (Chen, Chen & Zhang, ICDE 2017). The paper models `n` boolean *facts* as
//! correlated Bernoulli random variables and represents their dependency
//! structure as a joint distribution over the `2^n` possible truth
//! assignments, which it calls *outputs* (paper Section II-A, Table II).
//!
//! The central type is [`JointDist`]: a normalised, sparse map from
//! [`Assignment`] (a bitmask of truth values) to probability. On top of it the
//! crate provides:
//!
//! * [`VarSet`] — subsets of variables with compact re-indexing (used to
//!   project a distribution onto a task set),
//! * marginalisation, conditioning and reweighting (the Bayesian merge of
//!   Equation 3 in the paper is a reweight followed by normalisation),
//! * Shannon entropy in bits ([`entropy`]), mutual information, KL divergence,
//! * a soft [`factor::FactorGraphBuilder`] for building correlated priors from
//!   per-fact marginals plus exclusivity / equivalence / implication factors,
//! * exact sampling of ground-truth assignments.
//!
//! All entropies are measured in **bits** (log base 2); the paper's running
//! example (`H({f1}) = 1` for `P(f1) = 0.5`) fixes this convention.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod dist;
pub mod entropy;
pub mod error;
pub mod factor;
pub mod mask;
pub mod presets;
pub mod sample;

pub use dist::{thin_support, JointDist};
pub use entropy::{binary_entropy, entropy_of_probs, entropy_of_weights};
pub use error::JointError;
pub use factor::{Factor, FactorGraphBuilder};
pub use mask::{Assignment, VarSet};

/// Maximum number of variables for which dense `2^n` enumeration is allowed.
///
/// Dense tables of `2^26` `f64` entries occupy 512 MiB transiently during
/// construction; anything beyond that is rejected with
/// [`JointError::TooManyVariables`]. The paper processes each book (entity)
/// independently, and per-entity fact counts stay well below this bound.
pub const MAX_DENSE_VARS: usize = 26;

/// Probabilities whose magnitude is below this threshold are treated as zero
/// when trimming distribution supports.
pub const PROB_EPSILON: f64 = 1e-12;
