//! The [`JointDist`] type: a normalised sparse joint distribution.

use crate::entropy::entropy_of_probs;
use crate::error::JointError;
use crate::mask::{Assignment, VarSet};
use crate::{MAX_DENSE_VARS, PROB_EPSILON};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A normalised joint probability distribution over `n` Bernoulli variables,
/// stored sparsely as `(assignment, probability)` pairs sorted by assignment.
///
/// This corresponds to the paper's *output set* `O` with probabilities
/// `P(o_i)` (Section II-A, Table II). The support contains only assignments
/// with strictly positive probability; entries are unique and sorted, and the
/// probabilities sum to 1 (up to floating-point round-off; every constructor
/// renormalises).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JointDist {
    n: usize,
    entries: Vec<(Assignment, f64)>,
}

impl JointDist {
    /// Builds a distribution from raw `(assignment, weight)` pairs.
    ///
    /// Weights must be finite and non-negative; duplicates are merged; zero
    /// weights are dropped; the result is normalised. Assignment bits at or
    /// above `n` must be zero.
    pub fn from_weights(
        n: usize,
        weights: impl IntoIterator<Item = (Assignment, f64)>,
    ) -> Result<JointDist, JointError> {
        if n > 64 {
            return Err(JointError::TooManyVariables {
                requested: n,
                limit: 64,
            });
        }
        let valid = VarSet::all(n);
        let mut merged: BTreeMap<Assignment, f64> = BTreeMap::new();
        for (a, w) in weights {
            if !w.is_finite() || w < 0.0 {
                return Err(JointError::InvalidProbability(w));
            }
            if a.0 & !valid.0 != 0 {
                return Err(JointError::VariableOutOfRange {
                    var: (63 - (a.0 & !valid.0).leading_zeros()) as usize,
                    n,
                });
            }
            if w > 0.0 {
                *merged.entry(a).or_insert(0.0) += w;
            }
        }
        if merged.is_empty() {
            return Err(JointError::EmptySupport);
        }
        let total: f64 = merged.values().sum();
        if total <= 0.0 || !total.is_finite() {
            return Err(JointError::ZeroMass);
        }
        let entries = merged
            .into_iter()
            .filter(|(_, w)| *w / total > PROB_EPSILON)
            .map(|(a, w)| (a, w / total))
            .collect::<Vec<_>>();
        if entries.is_empty() {
            return Err(JointError::ZeroMass);
        }
        // Renormalise after trimming so probabilities still sum to 1.
        let total: f64 = entries.iter().map(|(_, p)| p).sum();
        Ok(JointDist {
            n,
            entries: entries.into_iter().map(|(a, p)| (a, p / total)).collect(),
        })
    }

    /// The uniform distribution over all `2^n` assignments (the paper's
    /// "simply set to uniform distribution" initialisation, Section III).
    pub fn uniform(n: usize) -> Result<JointDist, JointError> {
        if n > MAX_DENSE_VARS {
            return Err(JointError::TooManyVariables {
                requested: n,
                limit: MAX_DENSE_VARS,
            });
        }
        let count = 1u64 << n;
        let p = 1.0 / count as f64;
        Ok(JointDist {
            n,
            entries: (0..count).map(|a| (Assignment(a), p)).collect(),
        })
    }

    /// A product distribution from independent per-variable marginals
    /// `P(f_i = true)`.
    pub fn independent(marginals: &[f64]) -> Result<JointDist, JointError> {
        let n = marginals.len();
        if n > MAX_DENSE_VARS {
            return Err(JointError::TooManyVariables {
                requested: n,
                limit: MAX_DENSE_VARS,
            });
        }
        for (var, &p) in marginals.iter().enumerate() {
            if !(0.0..=1.0).contains(&p) || !p.is_finite() {
                return Err(JointError::MarginalOutOfRange { var, value: p });
            }
        }
        // Tensor the marginals one variable at a time.
        let mut weights = vec![1.0f64];
        for &p in marginals {
            let mut next = Vec::with_capacity(weights.len() * 2);
            for &w in &weights {
                next.push(w * (1.0 - p));
            }
            for &w in &weights {
                next.push(w * p);
            }
            // Reinterleave: assignment bit for this variable is the high bit
            // of the index, so `next[a]` where a's new high bit selects the
            // half. Built as [false-half, true-half], which is exactly the
            // layout of index = (bit << len) | old_index.
            weights = next;
        }
        JointDist::from_weights(
            n,
            weights
                .into_iter()
                .enumerate()
                .map(|(a, w)| (Assignment(a as u64), w)),
        )
    }

    /// A point-mass distribution on a single assignment.
    pub fn certain(n: usize, truth: Assignment) -> Result<JointDist, JointError> {
        JointDist::from_weights(n, [(truth, 1.0)])
    }

    /// Number of variables.
    #[inline]
    pub fn num_vars(&self) -> usize {
        self.n
    }

    /// Number of assignments with positive probability.
    #[inline]
    pub fn support_size(&self) -> usize {
        self.entries.len()
    }

    /// Iterates `(assignment, probability)` pairs in assignment order.
    pub fn iter(&self) -> impl Iterator<Item = (Assignment, f64)> + '_ {
        self.entries.iter().copied()
    }

    /// The sorted support entries as a slice.
    pub fn entries(&self) -> &[(Assignment, f64)] {
        &self.entries
    }

    /// Probability of an exact assignment (0 if outside the support).
    pub fn prob(&self, a: Assignment) -> f64 {
        match self.entries.binary_search_by_key(&a, |&(e, _)| e) {
            Ok(idx) => self.entries[idx].1,
            Err(_) => 0.0,
        }
    }

    /// Marginal probability `P(f_var = true)` — the paper's `P(f_k)`
    /// (`= Σ_{o_i ∈ O_k} P(o_i)`, Section II-A).
    pub fn marginal(&self, var: usize) -> Result<f64, JointError> {
        if var >= self.n {
            return Err(JointError::VariableOutOfRange { var, n: self.n });
        }
        Ok(self
            .entries
            .iter()
            .filter(|(a, _)| a.get(var))
            .map(|(_, p)| p)
            .sum())
    }

    /// All per-variable marginals.
    ///
    /// Iterates only the *set* bits of each support assignment
    /// (`O(|O| · popcount)` rather than `O(|O| · n)`): a variable
    /// contributes to `P(f_v = true)` only through assignments where its
    /// bit is set, so the cleared bits never need visiting.
    pub fn marginals(&self) -> Vec<f64> {
        let mut m = vec![0.0; self.n];
        for &(a, p) in &self.entries {
            let mut bits = a.0;
            while bits != 0 {
                m[bits.trailing_zeros() as usize] += p;
                bits &= bits - 1;
            }
        }
        m
    }

    /// Projects (marginalises) the distribution onto the variables in `vars`,
    /// re-indexing them compactly in increasing original order.
    ///
    /// The result has `vars.len()` variables; variable `j` of the result is
    /// the `j`-th smallest member of `vars`.
    pub fn restrict(&self, vars: VarSet) -> Result<JointDist, JointError> {
        let valid = VarSet::all(self.n);
        if vars.difference(valid) != VarSet::EMPTY {
            let bad = vars.difference(valid).iter().next().unwrap_or(self.n);
            return Err(JointError::VariableOutOfRange {
                var: bad,
                n: self.n,
            });
        }
        let mut merged: BTreeMap<Assignment, f64> = BTreeMap::new();
        for &(a, p) in &self.entries {
            *merged.entry(Assignment(a.extract(vars))).or_insert(0.0) += p;
        }
        JointDist::from_weights(vars.len(), merged)
    }

    /// Thins the support to at most `budget` entries — **growth control**
    /// for sparse-sampled distributions whose draw support overshoots its
    /// budget. The `budget` highest-probability assignments are kept
    /// (ties broken toward the smaller assignment, so the result is a
    /// pure function of the input) and the trimmed mass is reinstated by
    /// renormalisation over the kept support, so the total mass is
    /// preserved exactly. A support already within budget is returned
    /// unchanged, bit for bit. One selection algorithm —
    /// [`thin_support`] — backs this and the sparse answer table's
    /// thinning.
    ///
    /// The relative error introduced on any kept probability is bounded
    /// by the trimmed mass fraction; thinning the low-probability tail of
    /// an importance-sampled prior therefore perturbs marginals far less
    /// than the sampler's own `O(1/√draws)` noise.
    pub fn thin_to(&self, budget: usize) -> Result<JointDist, JointError> {
        if self.entries.len() <= budget {
            return Ok(self.clone());
        }
        let entries = thin_support(&self.entries, budget).ok_or(JointError::EmptySupport)?;
        Ok(JointDist { n: self.n, entries })
    }

    /// Shannon entropy `H` of the joint distribution, in bits.
    ///
    /// The paper's utility (Definition 1) is `Q(F) = −H(F)`; see
    /// [`JointDist::utility`].
    pub fn entropy(&self) -> f64 {
        entropy_of_probs(self.entries.iter().map(|&(_, p)| p))
    }

    /// The PWS-quality utility `Q(F) = −H(F)` (Definition 1).
    pub fn utility(&self) -> f64 {
        -self.entropy()
    }

    /// Reweights every support entry by `factor(assignment)` and
    /// renormalises — the generic Bayesian-update primitive. `factor` must
    /// return finite non-negative likelihoods.
    pub fn reweight(
        &self,
        mut factor: impl FnMut(Assignment) -> f64,
    ) -> Result<JointDist, JointError> {
        JointDist::from_weights(
            self.n,
            self.entries.iter().map(|&(a, p)| (a, p * factor(a))),
        )
        .map_err(|e| match e {
            JointError::EmptySupport => JointError::ZeroMass,
            other => other,
        })
    }

    /// In-place [`JointDist::reweight`]: multiplies each entry by
    /// `factor(assignment)`, drops entries whose renormalised probability
    /// falls below the support threshold, and renormalises — without the
    /// intermediate `BTreeMap` re-merge of [`JointDist::from_weights`].
    ///
    /// The support is already sorted and duplicate-free, and reweighting
    /// preserves both properties, so the sorted entry vector is reused
    /// as-is. This is the per-round Bayesian-update fast path: the merge
    /// of Equation 3 runs every round on every entity, and the re-merge
    /// dominated its cost. Produces bit-identical results to
    /// `reweight` (the arithmetic sequence is the same).
    ///
    /// On `Err` the distribution may hold partially reweighted,
    /// unnormalised entries and must not be used further; clone first if
    /// the pre-update state matters (as [`JointDist::reweight`] does).
    pub fn reweight_in_place(
        &mut self,
        mut factor: impl FnMut(Assignment) -> f64,
    ) -> Result<(), JointError> {
        let mut total = 0.0f64;
        for (a, p) in self.entries.iter_mut() {
            let w = *p * factor(*a);
            if !w.is_finite() || w < 0.0 {
                return Err(JointError::InvalidProbability(w));
            }
            *p = w;
            total += w;
        }
        if total <= 0.0 || !total.is_finite() {
            return Err(JointError::ZeroMass);
        }
        // Same two-step normalise-trim-renormalise sequence as
        // `from_weights`, so both paths round identically.
        self.entries.retain_mut(|(_, p)| {
            *p /= total;
            *p > PROB_EPSILON
        });
        if self.entries.is_empty() {
            return Err(JointError::ZeroMass);
        }
        let total: f64 = self.entries.iter().map(|&(_, p)| p).sum();
        for (_, p) in self.entries.iter_mut() {
            *p /= total;
        }
        Ok(())
    }

    /// Conditions on `f_var = value`, renormalising over the surviving
    /// assignments.
    pub fn condition(&self, var: usize, value: bool) -> Result<JointDist, JointError> {
        if var >= self.n {
            return Err(JointError::VariableOutOfRange { var, n: self.n });
        }
        self.reweight(|a| if a.get(var) == value { 1.0 } else { 0.0 })
    }

    /// Mutual information `I(A; B)` in bits between two disjoint variable
    /// sets.
    pub fn mutual_information(&self, a: VarSet, b: VarSet) -> Result<f64, JointError> {
        if a.intersect(b) != VarSet::EMPTY {
            return Err(JointError::DegenerateFactor(
                "mutual information requires disjoint variable sets",
            ));
        }
        let ha = self.restrict(a)?.entropy();
        let hb = self.restrict(b)?.entropy();
        let hab = self.restrict(a.union(b))?.entropy();
        Ok((ha + hb - hab).max(0.0))
    }

    /// Kullback–Leibler divergence `D(self ‖ other)` in bits. Returns
    /// `f64::INFINITY` when `self` puts mass where `other` has none.
    pub fn kl_divergence(&self, other: &JointDist) -> Result<f64, JointError> {
        if self.n != other.n {
            return Err(JointError::VariableOutOfRange {
                var: other.n,
                n: self.n,
            });
        }
        let mut kl = 0.0;
        for &(a, p) in &self.entries {
            let q = other.prob(a);
            if q <= 0.0 {
                return Ok(f64::INFINITY);
            }
            kl += p * (p / q).log2();
        }
        Ok(kl.max(0.0))
    }

    /// Total probability mass (should always be ≈ 1; exposed for tests and
    /// diagnostics).
    pub fn total_mass(&self) -> f64 {
        self.entries.iter().map(|&(_, p)| p).sum()
    }

    /// Predicted truth assignment by thresholding each marginal at `0.5`.
    pub fn map_truth(&self) -> Assignment {
        let mut a = Assignment::ALL_FALSE;
        for (v, m) in self.marginals().into_iter().enumerate() {
            if m >= 0.5 {
                a = a.with(v, true);
            }
        }
        a
    }

    /// The single most probable assignment (maximum a posteriori over the
    /// joint, not the marginals).
    pub fn mode(&self) -> Assignment {
        self.entries
            .iter()
            .max_by(|x, y| x.1.total_cmp(&y.1))
            .map(|&(a, _)| a)
            .unwrap_or(Assignment::ALL_FALSE)
    }
}

/// Keeps the `budget` highest-probability entries of a sorted sparse
/// support, rescaling the kept entries so the input's **total mass is
/// preserved exactly** (the trimmed mass is reinstated by
/// renormalisation). Ties break toward the smaller key and the kept
/// entries come back in their original (key-sorted) order, so the result
/// is a pure function of the input. `None` when `budget == 0`; an input
/// already within budget is returned unchanged.
///
/// This is *the* support-thinning algorithm: [`JointDist::thin_to`] and
/// the sparse answer table's `AnswerTable::thin_to` both delegate here,
/// so their documented agreement cannot drift.
pub fn thin_support<K: Copy + Ord>(entries: &[(K, f64)], budget: usize) -> Option<Vec<(K, f64)>> {
    if budget == 0 {
        return None;
    }
    if entries.len() <= budget {
        return Some(entries.to_vec());
    }
    let mut order: Vec<usize> = (0..entries.len()).collect();
    order.sort_by(|&i, &j| {
        let (ki, pi) = entries[i];
        let (kj, pj) = entries[j];
        pj.partial_cmp(&pi)
            .expect("support probabilities are finite")
            .then(ki.cmp(&kj))
    });
    order.truncate(budget);
    order.sort_unstable(); // back to key-sorted entry order
    let kept: Vec<(K, f64)> = order.iter().map(|&i| entries[i]).collect();
    let before: f64 = entries.iter().map(|&(_, p)| p).sum();
    let after: f64 = kept.iter().map(|&(_, p)| p).sum();
    let scale = before / after;
    Some(kept.into_iter().map(|(k, p)| (k, p * scale)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9
    }

    /// The running example of the paper, Table II (f1..f4 = vars 0..3).
    fn running_example() -> JointDist {
        crate::presets::paper_running_example()
    }

    #[test]
    fn running_example_marginals_match_table_one() {
        let d = running_example();
        assert!(close(d.marginal(0).unwrap(), 0.50)); // f1 Continent Asia
        assert!(close(d.marginal(1).unwrap(), 0.63)); // f2 Population
        assert!(close(d.marginal(2).unwrap(), 0.58)); // f3 Ethnic group
        assert!(close(d.marginal(3).unwrap(), 0.49)); // f4 Continent Europe
        let m = d.marginals();
        assert!(close(m[0], 0.50) && close(m[3], 0.49));
    }

    #[test]
    fn from_weights_normalises_and_merges() {
        let d = JointDist::from_weights(
            2,
            [
                (Assignment(0), 1.0),
                (Assignment(1), 2.0),
                (Assignment(1), 1.0),
            ],
        )
        .unwrap();
        assert_eq!(d.support_size(), 2);
        assert!(close(d.prob(Assignment(0)), 0.25));
        assert!(close(d.prob(Assignment(1)), 0.75));
        assert!(close(d.total_mass(), 1.0));
    }

    #[test]
    fn from_weights_rejects_bad_input() {
        assert!(matches!(
            JointDist::from_weights(2, [(Assignment(0), -1.0)]),
            Err(JointError::InvalidProbability(_))
        ));
        assert!(matches!(
            JointDist::from_weights(2, [(Assignment(0), f64::NAN)]),
            Err(JointError::InvalidProbability(_))
        ));
        assert!(matches!(
            JointDist::from_weights(2, std::iter::empty()),
            Err(JointError::EmptySupport)
        ));
        assert!(matches!(
            JointDist::from_weights(2, [(Assignment(0b100), 1.0)]),
            Err(JointError::VariableOutOfRange { .. })
        ));
        assert!(matches!(
            JointDist::from_weights(65, [(Assignment(0), 1.0)]),
            Err(JointError::TooManyVariables { .. })
        ));
        assert!(matches!(
            JointDist::from_weights(2, [(Assignment(0), 0.0)]),
            Err(JointError::EmptySupport)
        ));
    }

    #[test]
    fn uniform_entropy_is_n_bits() {
        let d = JointDist::uniform(5).unwrap();
        assert_eq!(d.support_size(), 32);
        assert!(close(d.entropy(), 5.0));
        assert!(close(d.utility(), -5.0));
        assert!(JointDist::uniform(MAX_DENSE_VARS + 1).is_err());
    }

    #[test]
    fn independent_matches_product() {
        let d = JointDist::independent(&[0.5, 0.9]).unwrap();
        // var0 bit0, var1 bit1
        assert!(close(d.prob(Assignment(0b00)), 0.5 * 0.1));
        assert!(close(d.prob(Assignment(0b01)), 0.5 * 0.1));
        assert!(close(d.prob(Assignment(0b10)), 0.5 * 0.9));
        assert!(close(d.prob(Assignment(0b11)), 0.5 * 0.9));
        assert!(close(d.marginal(0).unwrap(), 0.5));
        assert!(close(d.marginal(1).unwrap(), 0.9));
    }

    #[test]
    fn independent_rejects_bad_marginals() {
        assert!(matches!(
            JointDist::independent(&[0.5, 1.5]),
            Err(JointError::MarginalOutOfRange { var: 1, .. })
        ));
        assert!(JointDist::independent(&vec![0.5; MAX_DENSE_VARS + 1]).is_err());
    }

    #[test]
    fn independent_degenerate_marginals_shrink_support() {
        let d = JointDist::independent(&[1.0, 0.5, 0.0]).unwrap();
        assert_eq!(d.support_size(), 2);
        assert!(close(d.marginal(0).unwrap(), 1.0));
        assert!(close(d.marginal(2).unwrap(), 0.0));
    }

    #[test]
    fn certain_has_zero_entropy() {
        let d = JointDist::certain(3, Assignment(0b101)).unwrap();
        assert_eq!(d.support_size(), 1);
        assert!(close(d.entropy(), 0.0));
        assert_eq!(d.mode(), Assignment(0b101));
        assert_eq!(d.map_truth(), Assignment(0b101));
    }

    #[test]
    fn restrict_projects_and_reindexes() {
        let d = running_example();
        // Restrict to {f2, f4} = vars {1, 3} -> new vars (0 = f2, 1 = f4).
        let r = d.restrict(VarSet::from_vars([1, 3])).unwrap();
        assert_eq!(r.num_vars(), 2);
        assert!(close(r.marginal(0).unwrap(), 0.63));
        assert!(close(r.marginal(1).unwrap(), 0.49));
        assert!(close(r.total_mass(), 1.0));
        assert!(d.restrict(VarSet::from_vars([7])).is_err());
    }

    #[test]
    fn restrict_to_all_is_identity() {
        let d = running_example();
        let r = d.restrict(VarSet::all(4)).unwrap();
        assert_eq!(r, d);
    }

    #[test]
    fn condition_running_example() {
        let d = running_example();
        // Conditioning on f1 = true: mass 0.5, o9 (TFFF) had 0.04 -> 0.08.
        let c = d.condition(0, true).unwrap();
        assert!(close(c.marginal(0).unwrap(), 1.0));
        assert!(close(c.prob(Assignment(0b0001)), 0.08));
        assert!(c.support_size() <= 8);
        assert!(d.condition(9, true).is_err());
    }

    #[test]
    fn reweight_zero_mass_fails() {
        let d = JointDist::uniform(2).unwrap();
        assert!(matches!(d.reweight(|_| 0.0), Err(JointError::ZeroMass)));
        let mut m = d.clone();
        assert!(matches!(
            m.reweight_in_place(|_| 0.0),
            Err(JointError::ZeroMass)
        ));
        let mut m = d;
        assert!(matches!(
            m.reweight_in_place(|_| f64::NAN),
            Err(JointError::InvalidProbability(_))
        ));
    }

    #[test]
    fn reweight_in_place_matches_reweight_exactly() {
        // The fast path must be bit-identical to the merge-based one on
        // every entry, including the support trimming behaviour.
        let d = running_example();
        let factors: [fn(Assignment) -> f64; 3] = [
            |a| if a.get(0) { 0.8 } else { 0.2 },
            |a| (a.count_true() as f64 + 0.5) * 0.125,
            // Drives most entries under the support threshold.
            |a| if a.0 == 0b0001 { 1.0 } else { 1e-15 },
        ];
        for factor in factors {
            let merged = d.reweight(factor).unwrap();
            let mut fast = d.clone();
            fast.reweight_in_place(factor).unwrap();
            assert_eq!(merged, fast);
        }
    }

    #[test]
    fn marginals_match_per_variable_queries() {
        let d = running_example();
        for (v, &mv) in d.marginals().iter().enumerate() {
            assert!(close(mv, d.marginal(v).unwrap()));
        }
        // All-false support entries exercise the zero-popcount path.
        let p =
            JointDist::from_weights(3, [(Assignment(0), 1.0), (Assignment(0b110), 1.0)]).unwrap();
        let m = p.marginals();
        assert!(close(m[0], 0.0) && close(m[1], 0.5) && close(m[2], 0.5));
    }

    #[test]
    fn reweight_bayes_matches_manual() {
        let d = running_example();
        // Ask f1, answer "true" with Pc = 0.8 (paper Section III-A).
        let pc = 0.8;
        let posterior = d
            .reweight(|a| if a.get(0) { pc } else { 1.0 - pc })
            .unwrap();
        // P(o1 | e) = 0.03 * 0.2 / 0.5 = 0.012
        assert!(close(posterior.prob(Assignment(0b0000)), 0.012));
        // P(o9 | e) = 0.04 * 0.8 / 0.5 = 0.064
        assert!(close(posterior.prob(Assignment(0b0001)), 0.064));
    }

    #[test]
    fn mutual_information_nonnegative_and_zero_for_independent() {
        let d = JointDist::independent(&[0.3, 0.7, 0.5]).unwrap();
        let mi = d
            .mutual_information(VarSet::single(0), VarSet::from_vars([1, 2]))
            .unwrap();
        assert!(close(mi, 0.0));
        let e = running_example();
        let mi = e
            .mutual_information(VarSet::single(0), VarSet::single(3))
            .unwrap();
        assert!(mi >= 0.0);
        assert!(e
            .mutual_information(VarSet::single(0), VarSet::from_vars([0, 1]))
            .is_err());
    }

    #[test]
    fn kl_divergence_properties() {
        let d = running_example();
        assert!(close(d.kl_divergence(&d).unwrap(), 0.0));
        let u = JointDist::uniform(4).unwrap();
        let kl = d.kl_divergence(&u).unwrap();
        assert!(kl > 0.0 && kl.is_finite());
        let point = JointDist::certain(4, Assignment(0)).unwrap();
        assert_eq!(d.kl_divergence(&point).unwrap(), f64::INFINITY);
        let other_n = JointDist::uniform(3).unwrap();
        assert!(d.kl_divergence(&other_n).is_err());
    }

    #[test]
    fn prob_outside_support_is_zero() {
        let d = JointDist::certain(3, Assignment(0b001)).unwrap();
        assert_eq!(d.prob(Assignment(0b010)), 0.0);
    }

    #[test]
    fn thin_to_keeps_top_entries_and_total_mass() {
        let d = JointDist::from_weights(
            3,
            [
                (Assignment(0b000), 0.40),
                (Assignment(0b001), 0.25),
                (Assignment(0b010), 0.20),
                (Assignment(0b011), 0.10),
                (Assignment(0b100), 0.05),
            ],
        )
        .unwrap();
        let thin = d.thin_to(3).unwrap();
        assert_eq!(thin.support_size(), 3);
        // Total mass pinned to exactly 1 (trimmed mass reinstated).
        assert!((thin.total_mass() - 1.0).abs() < crate::PROB_EPSILON);
        // The kept support is the top-3 by probability, renormalised.
        let scale = 1.0 / 0.85;
        assert!(close(thin.prob(Assignment(0b000)), 0.40 * scale));
        assert!(close(thin.prob(Assignment(0b001)), 0.25 * scale));
        assert!(close(thin.prob(Assignment(0b010)), 0.20 * scale));
        assert_eq!(thin.prob(Assignment(0b011)), 0.0);
        // Entries stay assignment-sorted (the representation invariant).
        let entries = thin.entries();
        assert!(entries.windows(2).all(|w| w[0].0 .0 < w[1].0 .0));
    }

    #[test]
    fn thin_to_within_budget_is_the_identity_and_zero_budget_errors() {
        let d = running_example();
        let same = d.thin_to(d.support_size()).unwrap();
        assert_eq!(same, d);
        let bigger = d.thin_to(1 << 20).unwrap();
        assert_eq!(bigger, d);
        // Within-budget identity means marginals agree to PROB_EPSILON
        // trivially; pin it anyway as the contract the priors rely on.
        for (a, b) in d.marginals().iter().zip(same.marginals()) {
            assert!((a - b).abs() < crate::PROB_EPSILON);
        }
        assert!(matches!(d.thin_to(0), Err(JointError::EmptySupport)));
    }

    #[test]
    fn thin_to_breaks_probability_ties_deterministically() {
        let u = JointDist::uniform(3).unwrap();
        let a = u.thin_to(5).unwrap();
        let b = u.thin_to(5).unwrap();
        assert_eq!(a, b);
        // All probabilities equal: the smaller assignments win.
        let kept: Vec<u64> = a.entries().iter().map(|&(a, _)| a.0).collect();
        assert_eq!(kept, vec![0, 1, 2, 3, 4]);
        assert!((a.total_mass() - 1.0).abs() < crate::PROB_EPSILON);
    }
}
