//! A small factor-graph builder for correlated priors.
//!
//! Machine-only fusion methods emit *marginal* per-fact probabilities, but
//! CrowdFusion exploits *correlations* between facts ("Asia countries tend to
//! have large population", paper Sections I–II and IV). This module turns a
//! vector of marginals plus a set of soft logical factors into an explicit
//! [`JointDist`] by enumerating assignments and multiplying factor weights —
//! a tiny exact Markov-random-field materialiser.
//!
//! Soft factors attach a multiplicative penalty `λ ∈ [0, 1]` to assignments
//! that violate them; `λ = 0` makes a factor hard (violating assignments are
//! excluded from the support).

use crate::dist::JointDist;
use crate::error::JointError;
use crate::mask::{Assignment, VarSet};
use crate::MAX_DENSE_VARS;
use serde::{Deserialize, Serialize};

/// A soft logical constraint over a subset of variables.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Factor {
    /// At most one of the variables may be true; each *extra* true variable
    /// multiplies the weight by `penalty` once.
    ///
    /// Models conflicting single-truth claims (e.g. two different complete
    /// author lists for the same book cannot both be right).
    AtMostOne {
        /// Variables in the exclusion group.
        vars: VarSet,
        /// Penalty per extra true variable (0 = hard constraint).
        penalty: f64,
    },
    /// Exactly one variable must be true; any deviation (zero or more than
    /// one true) multiplies the weight by `penalty` per unit of deviation.
    ExactlyOne {
        /// Variables in the group.
        vars: VarSet,
        /// Penalty per unit deviation from one true (0 = hard constraint).
        penalty: f64,
    },
    /// All variables must share one truth value; each disagreeing variable
    /// (relative to the majority value) multiplies the weight by `penalty`.
    ///
    /// Models format variants of the same statement (e.g. two orderings of
    /// one author list are both true or both false).
    Equivalent {
        /// Variables tied together.
        vars: VarSet,
        /// Penalty per disagreeing variable (0 = hard constraint).
        penalty: f64,
    },
    /// If `premise` is true then `conclusion` should be true; a violation
    /// multiplies the weight by `penalty`.
    ///
    /// Models inference relationships between facts (paper Section I:
    /// `Pr(A|C) = Pr(B|C)` style correlations).
    Implies {
        /// Antecedent variable.
        premise: usize,
        /// Consequent variable.
        conclusion: usize,
        /// Penalty for `premise ∧ ¬conclusion` (0 = hard constraint).
        penalty: f64,
    },
    /// An explicit 2×2 table factor over a pair of variables; the weight for
    /// `(a, b)` is `table[(b as usize) << 1 | (a as usize)]`.
    Pairwise {
        /// First variable (low bit of the table index).
        a: usize,
        /// Second variable (high bit of the table index).
        b: usize,
        /// Weights for (F,F), (T,F), (F,T), (T,T).
        table: [f64; 4],
    },
}

impl Factor {
    /// Multiplicative weight this factor contributes to `assignment`.
    pub fn weight(&self, assignment: Assignment) -> f64 {
        match *self {
            Factor::AtMostOne { vars, penalty } => {
                let truths = Assignment(assignment.0 & vars.0).count_true();
                penalty.powi(truths.saturating_sub(1) as i32)
            }
            Factor::ExactlyOne { vars, penalty } => {
                let truths = Assignment(assignment.0 & vars.0).count_true() as i32;
                penalty.powi((truths - 1).abs())
            }
            Factor::Equivalent { vars, penalty } => {
                let truths = Assignment(assignment.0 & vars.0).count_true();
                let falses = vars.len() as u32 - truths;
                penalty.powi(truths.min(falses) as i32)
            }
            Factor::Implies {
                premise,
                conclusion,
                penalty,
            } => {
                if assignment.get(premise) && !assignment.get(conclusion) {
                    penalty
                } else {
                    1.0
                }
            }
            Factor::Pairwise { a, b, table } => {
                let idx = ((assignment.get(b) as usize) << 1) | assignment.get(a) as usize;
                table[idx]
            }
        }
    }

    /// The set of variables this factor touches.
    pub fn scope(&self) -> VarSet {
        match *self {
            Factor::AtMostOne { vars, .. }
            | Factor::ExactlyOne { vars, .. }
            | Factor::Equivalent { vars, .. } => vars,
            Factor::Implies {
                premise,
                conclusion,
                ..
            } => VarSet::single(premise).insert(conclusion),
            Factor::Pairwise { a, b, .. } => VarSet::single(a).insert(b),
        }
    }

    fn validate(&self, n: usize) -> Result<(), JointError> {
        let scope = self.scope();
        if let Some(bad) = scope.difference(VarSet::all(n)).iter().next() {
            return Err(JointError::VariableOutOfRange { var: bad, n });
        }
        let penalties_ok = match *self {
            Factor::AtMostOne { vars, penalty }
            | Factor::ExactlyOne { vars, penalty }
            | Factor::Equivalent { vars, penalty } => {
                if vars.len() < 2 {
                    return Err(JointError::DegenerateFactor(
                        "group factor needs at least two variables",
                    ));
                }
                penalty.is_finite() && (0.0..=1.0).contains(&penalty)
            }
            Factor::Implies {
                premise,
                conclusion,
                penalty,
            } => {
                if premise == conclusion {
                    return Err(JointError::DegenerateFactor(
                        "implication premise equals conclusion",
                    ));
                }
                penalty.is_finite() && (0.0..=1.0).contains(&penalty)
            }
            Factor::Pairwise { a, b, table } => {
                if a == b {
                    return Err(JointError::DegenerateFactor(
                        "pairwise factor variables must differ",
                    ));
                }
                table.iter().all(|w| w.is_finite() && *w >= 0.0)
            }
        };
        if penalties_ok {
            Ok(())
        } else {
            Err(JointError::DegenerateFactor("invalid factor weight"))
        }
    }
}

/// Builds a [`JointDist`] from per-variable marginals and soft factors.
///
/// ```
/// use crowdfusion_jointdist::{FactorGraphBuilder, Factor, VarSet};
///
/// // Two conflicting continent claims plus a population fact that the
/// // Asia claim softly implies.
/// let dist = FactorGraphBuilder::new(vec![0.5, 0.63, 0.49])
///     .factor(Factor::AtMostOne { vars: VarSet::from_vars([0, 2]), penalty: 0.1 })
///     .factor(Factor::Implies { premise: 0, conclusion: 1, penalty: 0.5 })
///     .build()
///     .unwrap();
/// assert_eq!(dist.num_vars(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct FactorGraphBuilder {
    marginals: Vec<f64>,
    factors: Vec<Factor>,
}

impl FactorGraphBuilder {
    /// Starts a builder from independent per-variable marginals
    /// `P(f_i = true)`.
    pub fn new(marginals: Vec<f64>) -> FactorGraphBuilder {
        FactorGraphBuilder {
            marginals,
            factors: Vec::new(),
        }
    }

    /// Adds a soft factor.
    #[must_use]
    pub fn factor(mut self, factor: Factor) -> FactorGraphBuilder {
        self.factors.push(factor);
        self
    }

    /// Adds several factors.
    #[must_use]
    pub fn factors(mut self, factors: impl IntoIterator<Item = Factor>) -> FactorGraphBuilder {
        self.factors.extend(factors);
        self
    }

    /// Number of variables this builder will produce.
    pub fn num_vars(&self) -> usize {
        self.marginals.len()
    }

    /// Validation shared by [`FactorGraphBuilder::build`] and
    /// [`FactorGraphBuilder::build_sparse`]: marginal ranges and factor
    /// well-formedness (the variable-count ceiling differs per backend).
    fn validate(&self) -> Result<(), JointError> {
        let n = self.marginals.len();
        for (var, &p) in self.marginals.iter().enumerate() {
            if !(0.0..=1.0).contains(&p) || !p.is_finite() {
                return Err(JointError::MarginalOutOfRange { var, value: p });
            }
        }
        for f in &self.factors {
            f.validate(n)?;
        }
        Ok(())
    }

    /// Materialises the joint distribution by dense enumeration.
    ///
    /// Weight of assignment `a` = `Π_i unary_i(a) · Π_f f.weight(a)`, then
    /// normalised. Fails if `n >` [`MAX_DENSE_VARS`], any marginal is outside
    /// `[0,1]`, any factor is malformed, or hard constraints eliminate every
    /// assignment.
    pub fn build(self) -> Result<JointDist, JointError> {
        let n = self.marginals.len();
        if n > MAX_DENSE_VARS {
            return Err(JointError::TooManyVariables {
                requested: n,
                limit: MAX_DENSE_VARS,
            });
        }
        self.validate()?;
        let count = 1u64 << n;
        let mut weights = Vec::with_capacity(count as usize);
        for bits in 0..count {
            let a = Assignment(bits);
            let mut w = 1.0;
            for (var, &p) in self.marginals.iter().enumerate() {
                w *= if a.get(var) { p } else { 1.0 - p };
                if w == 0.0 {
                    break;
                }
            }
            if w > 0.0 {
                for f in &self.factors {
                    w *= f.weight(a);
                    if w == 0.0 {
                        break;
                    }
                }
            }
            if w > 0.0 {
                weights.push((a, w));
            }
        }
        JointDist::from_weights(n, weights).map_err(|e| match e {
            JointError::EmptySupport => JointError::ZeroMass,
            other => other,
        })
    }

    /// Materialises a **sparse approximation** of the joint distribution by
    /// self-normalised importance sampling, for variable counts beyond
    /// [`MAX_DENSE_VARS`] (up to 64).
    ///
    /// `draws` assignments are sampled from the independent product of the
    /// unary marginals (the proposal) and each carries the product of its
    /// factor weights as an importance weight; the weighted histogram of
    /// the draws becomes the distribution. The estimator is consistent —
    /// error vanishes as `O(1/√draws)` — and deterministic in the RNG, so
    /// sparse priors for large entities are reproducible byte for byte.
    ///
    /// Fails like [`FactorGraphBuilder::build`] on malformed inputs, and
    /// with [`JointError::ZeroMass`] when every draw violates a hard
    /// (`penalty = 0`) factor — tight hard constraints on a wide proposal
    /// may need more draws.
    pub fn build_sparse<R: rand::Rng + ?Sized>(
        self,
        draws: usize,
        rng: &mut R,
    ) -> Result<JointDist, JointError> {
        let n = self.marginals.len();
        if n > 64 {
            return Err(JointError::TooManyVariables {
                requested: n,
                limit: 64,
            });
        }
        if draws == 0 {
            return Err(JointError::EmptySupport);
        }
        self.validate()?;
        let mut support: std::collections::BTreeMap<Assignment, f64> =
            std::collections::BTreeMap::new();
        for _ in 0..draws {
            let mut a = Assignment::ALL_FALSE;
            for (var, &p) in self.marginals.iter().enumerate() {
                a = a.with(var, rng.gen::<f64>() < p);
            }
            let mut w = 1.0f64;
            for f in &self.factors {
                w *= f.weight(a);
                if w == 0.0 {
                    break;
                }
            }
            if w > 0.0 {
                *support.entry(a).or_insert(0.0) += w;
            }
        }
        JointDist::from_weights(n, support).map_err(|e| match e {
            JointError::EmptySupport => JointError::ZeroMass,
            other => other,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9
    }

    #[test]
    fn no_factors_reduces_to_independent() {
        let m = vec![0.2, 0.7];
        let d = FactorGraphBuilder::new(m.clone()).build().unwrap();
        let ind = JointDist::independent(&m).unwrap();
        for (a, p) in d.iter() {
            assert!(close(p, ind.prob(a)));
        }
    }

    #[test]
    fn hard_at_most_one_removes_joint_truths() {
        let d = FactorGraphBuilder::new(vec![0.5, 0.5])
            .factor(Factor::AtMostOne {
                vars: VarSet::from_vars([0, 1]),
                penalty: 0.0,
            })
            .build()
            .unwrap();
        assert_eq!(d.prob(Assignment(0b11)), 0.0);
        assert!(close(d.total_mass(), 1.0));
        assert_eq!(d.support_size(), 3);
    }

    #[test]
    fn soft_at_most_one_downweights() {
        let d = FactorGraphBuilder::new(vec![0.5, 0.5])
            .factor(Factor::AtMostOne {
                vars: VarSet::from_vars([0, 1]),
                penalty: 0.5,
            })
            .build()
            .unwrap();
        // Weights: FF=.25, TF=.25, FT=.25, TT=.125 -> normalised.
        assert!(close(d.prob(Assignment(0b11)), 0.125 / 0.875));
    }

    #[test]
    fn exactly_one_hard() {
        let d = FactorGraphBuilder::new(vec![0.5, 0.5, 0.5])
            .factor(Factor::ExactlyOne {
                vars: VarSet::all(3),
                penalty: 0.0,
            })
            .build()
            .unwrap();
        assert_eq!(d.support_size(), 3);
        for (a, p) in d.iter() {
            assert_eq!(a.count_true(), 1);
            assert!(close(p, 1.0 / 3.0));
        }
    }

    #[test]
    fn equivalent_hard_ties_variables() {
        let d = FactorGraphBuilder::new(vec![0.6, 0.6])
            .factor(Factor::Equivalent {
                vars: VarSet::from_vars([0, 1]),
                penalty: 0.0,
            })
            .build()
            .unwrap();
        assert_eq!(d.support_size(), 2);
        // FF weight .16, TT weight .36.
        assert!(close(d.prob(Assignment(0b11)), 0.36 / 0.52));
        assert!(close(d.marginal(0).unwrap(), d.marginal(1).unwrap()));
    }

    #[test]
    fn implies_hard() {
        let d = FactorGraphBuilder::new(vec![0.5, 0.5])
            .factor(Factor::Implies {
                premise: 0,
                conclusion: 1,
                penalty: 0.0,
            })
            .build()
            .unwrap();
        assert_eq!(d.prob(Assignment(0b01)), 0.0); // premise w/o conclusion
        assert!(d.prob(Assignment(0b11)) > 0.0);
    }

    #[test]
    fn pairwise_table_factor() {
        let d = FactorGraphBuilder::new(vec![0.5, 0.5])
            .factor(Factor::Pairwise {
                a: 0,
                b: 1,
                table: [1.0, 0.0, 0.0, 1.0], // XNOR: force equality
            })
            .build()
            .unwrap();
        assert_eq!(d.support_size(), 2);
        assert!(close(d.prob(Assignment(0b00)), 0.5));
        assert!(close(d.prob(Assignment(0b11)), 0.5));
    }

    #[test]
    fn conflicting_hard_constraints_yield_zero_mass() {
        let err = FactorGraphBuilder::new(vec![0.5, 0.5])
            .factor(Factor::Equivalent {
                vars: VarSet::from_vars([0, 1]),
                penalty: 0.0,
            })
            .factor(Factor::ExactlyOne {
                vars: VarSet::from_vars([0, 1]),
                penalty: 0.0,
            })
            .build()
            .unwrap_err();
        assert_eq!(err, JointError::ZeroMass);
    }

    #[test]
    fn validation_rejects_bad_factors() {
        assert!(matches!(
            FactorGraphBuilder::new(vec![0.5, 0.5])
                .factor(Factor::AtMostOne {
                    vars: VarSet::from_vars([0]),
                    penalty: 0.5,
                })
                .build(),
            Err(JointError::DegenerateFactor(_))
        ));
        assert!(matches!(
            FactorGraphBuilder::new(vec![0.5, 0.5])
                .factor(Factor::Implies {
                    premise: 1,
                    conclusion: 1,
                    penalty: 0.5,
                })
                .build(),
            Err(JointError::DegenerateFactor(_))
        ));
        assert!(matches!(
            FactorGraphBuilder::new(vec![0.5, 0.5])
                .factor(Factor::Pairwise {
                    a: 0,
                    b: 1,
                    table: [1.0, -1.0, 0.0, 1.0],
                })
                .build(),
            Err(JointError::DegenerateFactor(_))
        ));
        assert!(matches!(
            FactorGraphBuilder::new(vec![0.5])
                .factor(Factor::Implies {
                    premise: 0,
                    conclusion: 3,
                    penalty: 0.5,
                })
                .build(),
            Err(JointError::VariableOutOfRange { .. })
        ));
        assert!(matches!(
            FactorGraphBuilder::new(vec![0.5, 2.0]).build(),
            Err(JointError::MarginalOutOfRange { var: 1, .. })
        ));
    }

    #[test]
    fn build_sparse_converges_to_dense_build() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let builder = FactorGraphBuilder::new(vec![0.6, 0.55, 0.5])
            .factor(Factor::Equivalent {
                vars: VarSet::from_vars([0, 1]),
                penalty: 0.35,
            })
            .factor(Factor::AtMostOne {
                vars: VarSet::from_vars([0, 2]),
                penalty: 0.75,
            });
        let dense = builder.clone().build().unwrap();
        let sparse = builder
            .build_sparse(200_000, &mut StdRng::seed_from_u64(11))
            .unwrap();
        for (a, p) in dense.iter() {
            assert!(
                (sparse.prob(a) - p).abs() < 0.01,
                "mismatch at {a:?}: {} vs {p}",
                sparse.prob(a)
            );
        }
    }

    #[test]
    fn build_sparse_handles_large_variable_counts() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let n = 40;
        let d = FactorGraphBuilder::new(vec![0.5; n])
            .factor(Factor::Equivalent {
                vars: VarSet::from_vars([0, 1, 2]),
                penalty: 0.2,
            })
            .factor(Factor::AtMostOne {
                vars: VarSet::from_vars([3, 4]),
                penalty: 0.5,
            })
            .build_sparse(4_096, &mut StdRng::seed_from_u64(7))
            .unwrap();
        assert_eq!(d.num_vars(), n);
        assert!(d.support_size() <= 4_096);
        assert!((d.total_mass() - 1.0).abs() < 1e-9);
        // The equivalence factor must visibly tie variables 0 and 1.
        let given_true = d.condition(0, true).unwrap();
        let given_false = d.condition(0, false).unwrap();
        assert!(given_true.marginal(1).unwrap() > given_false.marginal(1).unwrap() + 0.1);
    }

    #[test]
    fn build_sparse_is_deterministic_in_seed() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let builder = FactorGraphBuilder::new(vec![0.4; 30]).factor(Factor::Implies {
            premise: 0,
            conclusion: 1,
            penalty: 0.3,
        });
        let a = builder
            .clone()
            .build_sparse(2_000, &mut StdRng::seed_from_u64(5))
            .unwrap();
        let b = builder
            .build_sparse(2_000, &mut StdRng::seed_from_u64(5))
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn build_sparse_validates() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(0);
        assert!(matches!(
            FactorGraphBuilder::new(vec![0.5; 65]).build_sparse(100, &mut rng),
            Err(JointError::TooManyVariables { .. })
        ));
        assert!(matches!(
            FactorGraphBuilder::new(vec![0.5]).build_sparse(0, &mut rng),
            Err(JointError::EmptySupport)
        ));
        assert!(matches!(
            FactorGraphBuilder::new(vec![1.5]).build_sparse(100, &mut rng),
            Err(JointError::MarginalOutOfRange { .. })
        ));
        // Hard constraints that reject every draw yield ZeroMass.
        assert!(matches!(
            FactorGraphBuilder::new(vec![1.0, 0.0])
                .factor(Factor::Implies {
                    premise: 0,
                    conclusion: 1,
                    penalty: 0.0,
                })
                .build_sparse(64, &mut rng),
            Err(JointError::ZeroMass)
        ));
    }

    #[test]
    fn factor_scope() {
        let f = Factor::Implies {
            premise: 2,
            conclusion: 5,
            penalty: 0.1,
        };
        assert_eq!(f.scope(), VarSet::from_vars([2, 5]));
        let g = Factor::AtMostOne {
            vars: VarSet::from_vars([1, 3]),
            penalty: 0.0,
        };
        assert_eq!(g.scope(), VarSet::from_vars([1, 3]));
    }
}
