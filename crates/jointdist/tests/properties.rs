//! Property-based tests for the probability substrate.

use crowdfusion_jointdist::{
    binary_entropy, entropy_of_weights, Assignment, Factor, FactorGraphBuilder, JointDist, VarSet,
};
use proptest::prelude::*;

/// Strategy: a small random joint distribution with 1..=6 variables.
fn arb_dist() -> impl Strategy<Value = JointDist> {
    (1usize..=6).prop_flat_map(|n| {
        let count = 1usize << n;
        proptest::collection::vec(0.0f64..1.0, count).prop_filter_map(
            "needs positive mass",
            move |weights| {
                let entries = weights
                    .iter()
                    .enumerate()
                    .map(|(a, &w)| (Assignment(a as u64), w));
                JointDist::from_weights(n, entries).ok()
            },
        )
    })
}

/// Strategy: a distribution plus a non-empty subset of its variables.
fn dist_and_subset() -> impl Strategy<Value = (JointDist, VarSet)> {
    arb_dist().prop_flat_map(|d| {
        let n = d.num_vars();
        (Just(d), 1u64..(1u64 << n)).prop_map(|(d, bits)| (d, VarSet(bits)))
    })
}

proptest! {
    #[test]
    fn mass_is_one(d in arb_dist()) {
        prop_assert!((d.total_mass() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn entropy_within_bounds(d in arb_dist()) {
        let h = d.entropy();
        prop_assert!(h >= -1e-12);
        prop_assert!(h <= d.num_vars() as f64 + 1e-9);
    }

    #[test]
    fn marginals_in_unit_interval(d in arb_dist()) {
        for m in d.marginals() {
            prop_assert!((-1e-12..=1.0 + 1e-12).contains(&m));
        }
    }

    #[test]
    fn restriction_preserves_mass_and_marginals((d, vars) in dist_and_subset()) {
        let r = d.restrict(vars).unwrap();
        prop_assert_eq!(r.num_vars(), vars.len());
        prop_assert!((r.total_mass() - 1.0).abs() < 1e-9);
        // Marginal of the j-th smallest member must be preserved.
        for (j, v) in vars.iter().enumerate() {
            let orig = d.marginal(v).unwrap();
            let proj = r.marginal(j).unwrap();
            prop_assert!((orig - proj).abs() < 1e-9, "var {} marginal {} vs {}", v, orig, proj);
        }
    }

    #[test]
    fn subset_entropy_monotone((d, vars) in dist_and_subset()) {
        // H(subset) <= H(full set): entropy is monotone over variable sets.
        let hs = d.restrict(vars).unwrap().entropy();
        let hf = d.entropy();
        prop_assert!(hs <= hf + 1e-9, "H(subset)={} > H(full)={}", hs, hf);
    }

    #[test]
    fn conditioning_never_increases_support(d in arb_dist()) {
        for v in 0..d.num_vars() {
            let p = d.marginal(v).unwrap();
            if p > 1e-9 {
                let c = d.condition(v, true).unwrap();
                prop_assert!(c.support_size() <= d.support_size());
                prop_assert!((c.marginal(v).unwrap() - 1.0).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn chain_rule_entropy((d, vars) in dist_and_subset()) {
        // H(full) = H(vars) + H(rest | vars) >= H(vars); verify the
        // decomposition numerically via conditional expansion.
        let rest = VarSet::all(d.num_vars()).difference(vars);
        if rest.is_empty() {
            return Ok(());
        }
        let h_vars = d.restrict(vars).unwrap().entropy();
        let marg = d.restrict(vars).unwrap();
        // H(rest | vars) computed by summing per-assignment entropies.
        let mut h_cond = 0.0;
        for (compact, p) in marg.iter() {
            let full_pattern = Assignment::deposit(compact.0, vars);
            let conditioned = d
                .reweight(|a| if Assignment(a.0 & vars.0) == full_pattern { 1.0 } else { 0.0 })
                .unwrap();
            h_cond += p * conditioned.restrict(rest).unwrap().entropy();
        }
        let total = d.entropy();
        prop_assert!((h_vars + h_cond - total).abs() < 1e-6,
            "chain rule violated: {} + {} != {}", h_vars, h_cond, total);
    }

    #[test]
    fn mutual_information_nonnegative((d, vars) in dist_and_subset()) {
        let rest = VarSet::all(d.num_vars()).difference(vars);
        if rest.is_empty() {
            return Ok(());
        }
        let mi = d.mutual_information(vars, rest).unwrap();
        prop_assert!(mi >= -1e-9);
        // I(A;B) <= min(H(A), H(B)).
        let ha = d.restrict(vars).unwrap().entropy();
        let hb = d.restrict(rest).unwrap().entropy();
        prop_assert!(mi <= ha.min(hb) + 1e-9);
    }

    #[test]
    fn kl_divergence_nonnegative(d in arb_dist(), e in arb_dist()) {
        if d.num_vars() == e.num_vars() {
            let kl = d.kl_divergence(&e).unwrap();
            prop_assert!(kl >= 0.0);
        }
    }

    #[test]
    fn reweight_uniform_factor_is_identity(d in arb_dist(), c in 0.1f64..10.0) {
        let r = d.reweight(|_| c).unwrap();
        for (a, p) in d.iter() {
            prop_assert!((r.prob(a) - p).abs() < 1e-9);
        }
    }

    #[test]
    fn extract_deposit_roundtrip(bits in any::<u64>(), vars_bits in any::<u64>()) {
        let vars = VarSet(vars_bits);
        let a = Assignment(bits);
        let compact = a.extract(vars);
        prop_assert!(vars.len() == 64 || compact < (1u64 << vars.len()));
        let back = Assignment::deposit(compact, vars);
        prop_assert_eq!(Assignment(back.0 & vars.0), Assignment(a.0 & vars.0));
    }

    #[test]
    fn entropy_of_weights_scale_invariant(
        w in proptest::collection::vec(0.0f64..100.0, 1..32),
        s in 0.001f64..1000.0,
    ) {
        let h1 = entropy_of_weights(w.iter().copied());
        let h2 = entropy_of_weights(w.iter().map(|x| x * s));
        prop_assert!((h1 - h2).abs() < 1e-6);
    }

    #[test]
    fn binary_entropy_concave_symmetric(p in 0.0f64..=1.0) {
        let h = binary_entropy(p);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&h));
        prop_assert!((h - binary_entropy(1.0 - p)).abs() < 1e-9);
    }

    #[test]
    fn factor_graph_hard_constraints_hold(
        m in proptest::collection::vec(0.05f64..0.95, 3..=5),
    ) {
        let n = m.len();
        let d = FactorGraphBuilder::new(m)
            .factor(Factor::AtMostOne { vars: VarSet::from_vars([0, 1]), penalty: 0.0 })
            .factor(Factor::Implies { premise: 2, conclusion: 0, penalty: 0.0 })
            .build();
        if let Ok(d) = d {
            for (a, p) in d.iter() {
                prop_assert!(p > 0.0);
                prop_assert!(!(a.get(0) && a.get(1)), "AtMostOne violated");
                prop_assert!(!a.get(2) || a.get(0), "Implies violated");
            }
            prop_assert_eq!(d.num_vars(), n);
        }
    }

    #[test]
    fn sampling_stays_in_support(d in arb_dist(), seed in any::<u64>()) {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        for a in d.sample_many(&mut rng, 64) {
            prop_assert!(d.prob(a) > 0.0, "sampled assignment outside support");
        }
    }
}
