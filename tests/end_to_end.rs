//! Integration test: the full dataset → fusion → CrowdFusion pipeline.

use crowdfusion::pipeline::entity_cases_from_books;
use crowdfusion::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn books() -> GeneratedBooks {
    crowdfusion::datagen::book::generate(BookGenConfig {
        n_books: 10,
        seed: 5,
        ..BookGenConfig::quick()
    })
}

fn run_pipeline(selector: &dyn TaskSelector, seed: u64) -> ExperimentTrace {
    let books = books();
    let fusion = ModifiedCrh::default().fuse(&books.dataset).unwrap();
    let cases = entity_cases_from_books(&books, &fusion).unwrap();
    let config = RoundConfig::new(2, 20, 0.8).unwrap();
    let experiment = Experiment::new(cases, config).unwrap();
    let mut platform = CrowdPlatform::new(
        WorkerPool::uniform(12, 0.8).unwrap(),
        UniformAccuracy::new(0.8),
        seed,
    );
    let mut rng = StdRng::seed_from_u64(seed);
    experiment.run(selector, &mut platform, &mut rng).unwrap()
}

#[test]
fn pipeline_is_deterministic() {
    let a = run_pipeline(&GreedySelector::fast(), 3);
    let b = run_pipeline(&GreedySelector::fast(), 3);
    assert_eq!(a, b);
}

#[test]
fn different_seeds_change_answers_not_structure() {
    let a = run_pipeline(&GreedySelector::fast(), 3);
    let b = run_pipeline(&GreedySelector::fast(), 4);
    assert_eq!(a.points[0], b.points[0], "prior point is seed-independent");
    assert_eq!(a.points.len(), b.points.len());
    assert_ne!(a, b);
}

#[test]
fn refinement_improves_utility_and_f1() {
    let trace = run_pipeline(&GreedySelector::fast(), 9);
    let first = &trace.points[0];
    let last = trace.last();
    assert!(
        last.utility > first.utility + 5.0,
        "utility {} -> {}",
        first.utility,
        last.utility
    );
    assert!(last.f1 > first.f1, "f1 {} -> {}", first.f1, last.f1);
    assert!(last.f1 > 0.8, "final f1 {}", last.f1);
}

#[test]
fn greedy_dominates_random_averaged_over_seeds() {
    let mut greedy = 0.0;
    let mut random = 0.0;
    for seed in 0..5 {
        greedy += run_pipeline(&GreedySelector::fast(), seed).last().utility;
        random += run_pipeline(&RandomSelector, seed).last().utility;
    }
    assert!(
        greedy > random,
        "greedy {greedy} should beat random {random}"
    );
}

#[test]
fn cost_accounting_matches_budget() {
    let books = books();
    let n_books = books.dataset.entities().len() as u64;
    let trace = run_pipeline(&GreedySelector::fast(), 1);
    assert_eq!(trace.last().cost, n_books * 20);
}

#[test]
fn accuracy_pretest_calibrates_pc() {
    // The paper estimates worker accuracy with gold sample tasks before
    // choosing the Pc parameter; wire that flow end to end.
    let mut platform = CrowdPlatform::new(
        WorkerPool::uniform(15, 0.86).unwrap(),
        UniformAccuracy::new(0.86),
        77,
    );
    let sample_tasks: Vec<Task> = (0..2000).map(|i| Task::new(i, "pretest")).collect();
    let gold: Vec<bool> = (0..2000).map(|i| i % 2 == 0).collect();
    let estimate = estimate_accuracy(&mut platform, &sample_tasks, &gold).unwrap();
    assert!((estimate.pc - 0.86).abs() < 0.03);
    // The estimated Pc is a valid planning parameter.
    assert!(RoundConfig::new(2, 10, estimate.pc).is_ok());
}

#[test]
fn difficulty_aware_crowd_reduces_final_quality() {
    let books = books();
    let fusion = ModifiedCrh::default().fuse(&books.dataset).unwrap();
    let cases = entity_cases_from_books(&books, &fusion).unwrap();
    let config = RoundConfig::new(2, 20, 0.8).unwrap();
    let experiment = Experiment::new(cases, config).unwrap();

    let mut uniform_platform = CrowdPlatform::new(
        WorkerPool::uniform(12, 0.8).unwrap(),
        UniformAccuracy::new(0.8),
        13,
    );
    let mut rng = StdRng::seed_from_u64(13);
    let uniform_trace = experiment
        .run(&GreedySelector::fast(), &mut uniform_platform, &mut rng)
        .unwrap();

    let mut hard_platform = CrowdPlatform::new(
        WorkerPool::uniform(12, 0.8).unwrap(),
        ClassAccuracy::paper_defaults(0.8),
        13,
    );
    let mut rng = StdRng::seed_from_u64(13);
    let hard_trace = experiment
        .run(&GreedySelector::fast(), &mut hard_platform, &mut rng)
        .unwrap();

    assert!(
        hard_trace.last().f1 < uniform_trace.last().f1,
        "confusing statements should hurt final F1: {} vs {}",
        hard_trace.last().f1,
        uniform_trace.last().f1
    );
}
