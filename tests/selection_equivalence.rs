//! Integration test: the Table V selector configurations agree where theory
//! says they must, and differ only where the paper's aggressive bound is
//! unsound.

use crowdfusion::core::answers::AnswerEvaluator;
use crowdfusion::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_dist(n: usize, seed: u64) -> JointDist {
    let mut rng = StdRng::seed_from_u64(seed);
    JointDist::from_weights(
        n,
        (0..(1u64 << n)).map(|a| (Assignment(a), rng.gen_range(0.01..1.0))),
    )
    .unwrap()
}

fn select(selector: &dyn TaskSelector, d: &JointDist, pc: f64, k: usize) -> Vec<usize> {
    let mut rng = StdRng::seed_from_u64(0);
    selector.select(d, pc, k, &mut rng).unwrap()
}

#[test]
fn all_safe_configurations_agree_across_instances() {
    for seed in 0..12 {
        let n = 4 + (seed as usize % 4);
        let d = random_dist(n, seed);
        for pc in [0.6, 0.8, 0.95] {
            for k in [1, 2, 4] {
                let reference = select(&GreedySelector::paper_approx(), &d, pc, k);
                let variants: Vec<Box<dyn TaskSelector>> = vec![
                    Box::new(GreedySelector::paper_approx().with_prune(PruneBound::Safe)),
                    Box::new(GreedySelector::paper_approx().with_preprocess()),
                    Box::new(
                        GreedySelector::paper_approx()
                            .with_prune(PruneBound::Safe)
                            .with_preprocess(),
                    ),
                    Box::new(
                        GreedySelector::paper_approx().with_evaluator(AnswerEvaluator::Butterfly),
                    ),
                    Box::new(GreedySelector::fast()),
                ];
                for v in variants {
                    assert_eq!(
                        select(v.as_ref(), &d, pc, k),
                        reference,
                        "{} diverged (seed {seed}, pc {pc}, k {k})",
                        v.name()
                    );
                }
            }
        }
    }
}

#[test]
fn aggressive_bound_still_returns_full_selections() {
    // The paper's log2 bound may alter the picks but must still fill k.
    for seed in 0..8 {
        let d = random_dist(6, 100 + seed);
        for k in [2, 3, 5] {
            let tasks = select(
                &GreedySelector::paper_approx().with_prune(PruneBound::PaperAggressive),
                &d,
                0.8,
                k,
            );
            assert_eq!(tasks.len(), k, "seed {seed}, k {k}");
            let mut sorted = tasks.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), k, "duplicates in {tasks:?}");
        }
    }
}

#[test]
fn aggressive_bound_first_pick_matches_plain_greedy() {
    // With k = 1 there is no future slack, so even the aggressive bound
    // cannot change the outcome.
    for seed in 0..8 {
        let d = random_dist(5, 200 + seed);
        let plain = select(&GreedySelector::paper_approx(), &d, 0.8, 1);
        let aggressive = select(
            &GreedySelector::paper_approx().with_prune(PruneBound::PaperAggressive),
            &d,
            0.8,
            1,
        );
        assert_eq!(plain, aggressive);
    }
}

#[test]
fn opt_upper_bounds_every_heuristic() {
    use crowdfusion::core::answers::answer_entropy;
    for seed in 0..6 {
        let d = random_dist(6, 300 + seed);
        let pc = 0.8;
        let k = 3;
        let h = |tasks: &[usize]| {
            answer_entropy(
                &d,
                VarSet::from_vars(tasks.iter().copied()),
                pc,
                AnswerEvaluator::Butterfly,
            )
            .unwrap()
        };
        let opt = select(&OptSelector::new(AnswerEvaluator::Butterfly), &d, pc, k);
        let h_opt = h(&opt);
        for selector in [
            Box::new(GreedySelector::fast()) as Box<dyn TaskSelector>,
            Box::new(GreedySelector::paper_approx().with_prune(PruneBound::PaperAggressive)),
            Box::new(RandomSelector),
        ] {
            let tasks = select(selector.as_ref(), &d, pc, k);
            assert!(h(&tasks) <= h_opt + 1e-9, "{} beat OPT?!", selector.name());
        }
        // Greedy meets the (1 − 1/e) guarantee.
        let greedy = select(&GreedySelector::fast(), &d, pc, k);
        assert!(h(&greedy) >= (1.0 - 1.0 / std::f64::consts::E) * h_opt - 1e-9);
    }
}

#[test]
fn selection_quality_transfers_to_posterior_utility() {
    // Expected posterior utility gain equals H(T) − k·H(Pc); verify the
    // identity empirically by enumerating all answer sets.
    use crowdfusion::core::answers::{answer_distribution, answer_entropy, posterior};
    let d = random_dist(5, 999);
    let pc = 0.8;
    let mut tasks = select(&GreedySelector::fast(), &d, pc, 2);
    // Answer-pattern bit j corresponds to the j-th *smallest* selected
    // variable, so align the task order with it.
    tasks.sort_unstable();
    let tset = VarSet::from_vars(tasks.iter().copied());
    let ans_dist = answer_distribution(&d, tset, pc, AnswerEvaluator::Butterfly).unwrap();
    let mut expected_posterior_entropy = 0.0;
    for (pattern, &p_ans) in ans_dist.iter().enumerate() {
        if p_ans <= 0.0 {
            continue;
        }
        let answers: Vec<bool> = (0..tasks.len()).map(|j| (pattern >> j) & 1 == 1).collect();
        let post = posterior(&d, &tasks, &answers, pc).unwrap();
        expected_posterior_entropy += p_ans * post.entropy();
    }
    let h_t = answer_entropy(&d, tset, pc, AnswerEvaluator::Butterfly).unwrap();
    let k_h_crowd = tasks.len() as f64 * binary_entropy(pc);
    // H(F) − E[H(F | Ans)] = I(F; Ans) = H(Ans) − H(Ans | F) = H(T) − k·H(Pc).
    let info_gain = d.entropy() - expected_posterior_entropy;
    assert!(
        (info_gain - (h_t - k_h_crowd)).abs() < 1e-9,
        "information identity violated: {info_gain} vs {}",
        h_t - k_h_crowd
    );
}
