//! The committed fusion-report fixture: the exact `generate-books` +
//! `fuse --method crh --report` invocation CI's smoke step runs must
//! reproduce `tests/fixtures/fusion_report_crh.json` byte for byte. A
//! diff here means the report schema, the fusion output, or the seeded
//! dataset changed — all of which require updating the committed fixture
//! (and saying so) in the same commit.

use crowdfusion::cli::run;

fn args(list: &[&str]) -> Vec<String> {
    list.iter().map(|s| s.to_string()).collect()
}

#[test]
fn crh_report_matches_committed_fixture() {
    let dir = std::env::temp_dir().join("crowdfusion-report-fixture-test");
    std::fs::create_dir_all(&dir).unwrap();
    let books = dir.join("books.json").display().to_string();
    let report = dir.join("report.json").display().to_string();

    // Keep these argument lists in lockstep with the "Fusion report smoke"
    // step in .github/workflows/ci.yml.
    run(&args(&[
        "generate-books",
        "--out",
        &books,
        "--books",
        "20",
        "--sources",
        "8",
        "--seed",
        "42",
        "--attributes",
        "true",
    ]))
    .unwrap();
    run(&args(&[
        "fuse",
        "--dataset",
        &books,
        "--method",
        "crh",
        "--report",
        &report,
    ]))
    .unwrap();

    let fresh = std::fs::read_to_string(&report).unwrap();
    std::fs::remove_file(&books).ok();
    std::fs::remove_file(&report).ok();
    let committed = include_str!("fixtures/fusion_report_crh.json");
    assert_eq!(
        fresh, committed,
        "fuse --report output drifted from tests/fixtures/fusion_report_crh.json"
    );
}
