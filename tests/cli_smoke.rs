//! Facade smoke tests: `crowdfusion::cli::run` end to end, plus the
//! compiled binary's exit-status contract (`main` exits 2 on errors).

use std::path::PathBuf;
use std::process::Command;

fn args(raw: &[&str]) -> Vec<String> {
    raw.iter().map(|s| s.to_string()).collect()
}

fn tmp(name: &str) -> String {
    let mut p: PathBuf = std::env::temp_dir();
    p.push(format!("crowdfusion-smoke-{}-{name}", std::process::id()));
    p.to_string_lossy().into_owned()
}

#[test]
fn demo_happy_path() {
    let report = crowdfusion::cli::run(&args(&["demo"])).unwrap();
    assert!(report.contains("running example: 4 facts"));
    assert!(report.contains("best 2 tasks at Pc = 0.8"));
}

#[test]
fn generate_then_refine_happy_path() {
    let books = tmp("books.json");
    let report = crowdfusion::cli::run(&args(&[
        "generate-books",
        "--out",
        &books,
        "--books",
        "4",
        "--sources",
        "5",
        "--seed",
        "11",
    ]))
    .unwrap();
    assert!(report.contains("wrote 4 books"));

    let report = crowdfusion::cli::run(&args(&[
        "refine",
        "--dataset",
        &books,
        "--budget",
        "6",
        "--seed",
        "3",
    ]))
    .unwrap();
    assert!(report.contains("machine-only"));
    assert!(report.contains("refined"));
    std::fs::remove_file(&books).ok();
}

#[test]
fn malformed_args_are_rejected() {
    // No command at all: usage text comes back as the error.
    let err = crowdfusion::cli::run(&[]).unwrap_err();
    assert!(err.contains("USAGE"));

    // Unknown command names the offender and includes usage.
    let err = crowdfusion::cli::run(&args(&["transmogrify"])).unwrap_err();
    assert!(err.contains("unknown command"));
    assert!(err.contains("USAGE"));

    // A known command with an unknown flag.
    let err = crowdfusion::cli::run(&args(&["demo", "--loud", "1"])).unwrap_err();
    assert!(err.contains("unknown flag"));

    // A required flag missing.
    let err = crowdfusion::cli::run(&args(&["generate-books"])).unwrap_err();
    assert!(err.contains("--out"));
}

#[test]
fn binary_exit_codes_match_contract() {
    let exe = env!("CARGO_BIN_EXE_crowdfusion");

    let ok = Command::new(exe).arg("demo").output().unwrap();
    assert!(ok.status.success(), "demo must exit 0");
    assert!(String::from_utf8_lossy(&ok.stdout).contains("best 2 tasks"));

    let err = Command::new(exe).arg("no-such-command").output().unwrap();
    assert_eq!(err.status.code(), Some(2), "errors must exit 2");
    assert!(String::from_utf8_lossy(&err.stderr).contains("unknown command"));
    assert!(err.stdout.is_empty(), "error output goes to stderr only");
}
