//! Integration test: fusion substrate → prior construction → refinement.

use crowdfusion::fusion::StrategyRegistry;
use crowdfusion::pipeline::{entity_cases_from_books, gold_assignment};
use crowdfusion::prelude::*;
use rand::SeedableRng;

fn books() -> GeneratedBooks {
    crowdfusion::datagen::book::generate(BookGenConfig::quick())
}

#[test]
fn all_fusion_methods_produce_valid_cases() {
    let books = books();
    // Every registered strategy — including the per-attribute composite
    // and the resolver-backed methods — must feed the prior pipeline.
    let registry = StrategyRegistry::standard();
    for name in registry.names() {
        let method = registry.build(name).unwrap();
        let result = method.fuse(&books.dataset).unwrap();
        assert_eq!(result.probs().len(), books.dataset.statements().len());
        for &p in result.probs() {
            assert!((0.0..=1.0).contains(&p), "{}: prob {p}", method.name());
            assert!(
                p > 0.0 && p < 1.0,
                "{}: prob not clamped: {p}",
                method.name()
            );
        }
        let cases = entity_cases_from_books(&books, &result).unwrap();
        assert_eq!(cases.len(), books.dataset.entities().len());
        for case in &cases {
            assert!((case.prior.total_mass() - 1.0).abs() < 1e-9);
            case.validate().unwrap();
        }
    }
}

#[test]
fn registry_backends_refine_thread_count_invariantly() {
    // A registry-built backend must be indistinguishable from the direct
    // construction all the way through refinement: identical cases,
    // identical sharded traces, at 1 and 4 worker threads.
    let books = books();
    let direct = Crh::default().fuse(&books.dataset).unwrap();
    let named = crowdfusion::pipeline::fuse_books(&books, "crh").unwrap();
    assert_eq!(direct, named);

    let config = RoundConfig::new(2, 4, 0.8).unwrap();
    let mut traces = Vec::new();
    for result in [&direct, &named] {
        for threads in [1usize, 4] {
            let cases = entity_cases_from_books(&books, result).unwrap();
            let experiment = Experiment::new(cases, config).unwrap();
            let mut platform = CrowdPlatform::new(
                WorkerPool::uniform(30, 0.8).unwrap(),
                UniformAccuracy::new(0.8),
                7,
            );
            let mut rng = rand::rngs::StdRng::seed_from_u64(7);
            let trace = experiment
                .run_sharded(
                    &GreedySelector::fast(),
                    &mut platform,
                    &mut rng,
                    &crowdfusion::core::Pool::new(threads),
                )
                .unwrap();
            traces.push(trace);
        }
    }
    for t in &traces[1..] {
        assert_eq!(&traces[0], t, "trace diverged across backend/threads");
    }
}

#[test]
fn better_sources_yield_better_machine_f1() {
    // Raising source reliability must improve the machine-only result.
    let low = crowdfusion::datagen::book::generate(BookGenConfig {
        source_reliability: (0.2, 0.4),
        seed: 11,
        ..BookGenConfig::default()
    });
    let high = crowdfusion::datagen::book::generate(BookGenConfig {
        source_reliability: (0.7, 0.95),
        seed: 11,
        ..BookGenConfig::default()
    });
    let f1_of = |books: &GeneratedBooks| {
        let fusion = ModifiedCrh::default().fuse(&books.dataset).unwrap();
        let mut counts = ConfusionCounts::default();
        for entity in books.dataset.entities() {
            let marginals = fusion.entity_marginals(&books.dataset, entity.id);
            counts.add_marginals(&marginals, gold_assignment(&books.gold_for(entity.id)));
        }
        counts.f1()
    };
    let f1_low = f1_of(&low);
    let f1_high = f1_of(&high);
    assert!(
        f1_high > f1_low + 0.1,
        "reliability should matter: low {f1_low}, high {f1_high}"
    );
}

#[test]
fn grouped_prior_outperforms_independent_prior_in_f1() {
    // The correlation structure (format variants tied together, conflicts
    // discouraged) is information; using it should not hurt the prior's
    // utility as a starting point.
    let books = books();
    let fusion = ModifiedCrh::default().fuse(&books.dataset).unwrap();
    let mut grouped_counts = ConfusionCounts::default();
    let mut indep_counts = ConfusionCounts::default();
    for entity in books.dataset.entities() {
        let marginals = fusion.entity_marginals(&books.dataset, entity.id);
        let gold = gold_assignment(&books.gold_for(entity.id));
        let groups = books.correlation_groups(entity.id);
        let grouped = crowdfusion::core::prior::default_grouped_prior(&marginals, &groups).unwrap();
        let indep = crowdfusion::core::prior::independent_prior(&marginals).unwrap();
        grouped_counts.add_marginals(&grouped.marginals(), gold);
        indep_counts.add_marginals(&indep.marginals(), gold);
    }
    // Both are sensible; grouped must be at least competitive.
    assert!(
        grouped_counts.f1() >= indep_counts.f1() - 0.1,
        "grouped {} vs independent {}",
        grouped_counts.f1(),
        indep_counts.f1()
    );
}

#[test]
fn dataset_export_import_preserves_pipeline_behaviour() {
    let books = books();
    let dir = std::env::temp_dir().join("crowdfusion-pipeline-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("books.json");
    crowdfusion::datagen::export::save_books(&books, &path).unwrap();
    let loaded = crowdfusion::datagen::export::load_books(&path).unwrap();
    std::fs::remove_file(&path).ok();
    let a = ModifiedCrh::default().fuse(&books.dataset).unwrap();
    let b = ModifiedCrh::default().fuse(&loaded.dataset).unwrap();
    assert_eq!(a, b);
}

#[test]
fn specialist_sources_hurt_non_textbooks() {
    // The eCampus.com story: specialists' claims on non-textbooks are
    // nearly always wrong, so books in the specialist's blind spot have
    // lower machine accuracy.
    let books = crowdfusion::datagen::book::generate(BookGenConfig {
        n_books: 200,
        n_specialists: 4,
        participation: 1.0,
        seed: 3,
        ..BookGenConfig::default()
    });
    let fusion = ModifiedCrh::default().fuse(&books.dataset).unwrap();
    let mut textbook_counts = ConfusionCounts::default();
    let mut other_counts = ConfusionCounts::default();
    for entity in books.dataset.entities() {
        let marginals = fusion.entity_marginals(&books.dataset, entity.id);
        let gold = gold_assignment(&books.gold_for(entity.id));
        if books.textbook[entity.id.0 as usize] {
            textbook_counts.add_marginals(&marginals, gold);
        } else {
            other_counts.add_marginals(&marginals, gold);
        }
    }
    assert!(
        textbook_counts.accuracy() > other_counts.accuracy(),
        "textbooks {} should beat non-textbooks {}",
        textbook_counts.accuracy(),
        other_counts.accuracy()
    );
}
