//! Integration test: query-based CrowdFusion (Section IV) through the
//! facade, including the reduction to the general system.

use crowdfusion::datagen::country::{generate, vars};
use crowdfusion::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn rng() -> StdRng {
    StdRng::seed_from_u64(0)
}

#[test]
fn full_interest_reduces_to_general_crowdfusion() {
    // "query based CrowdFusion is a general case of CrowdFusion since we
    // can reduce query based CrowdFusion to overall cases by setting
    // I = F" (Section IV-B).
    let facts = FactSet::running_example();
    for k in 1..=3 {
        let general = GreedySelector::fast()
            .select(facts.dist(), 0.8, k, &mut rng())
            .unwrap();
        let query = QueryGreedySelector::new(VarSet::all(4))
            .select(facts.dist(), 0.8, k, &mut rng())
            .unwrap();
        assert_eq!(general, query, "k = {k}");
    }
}

#[test]
fn country_scenario_asks_correlated_continent_facts() {
    let countries = generate(CountryGenConfig {
        n_countries: 30,
        implication_penalty: 0.08,
        exclusivity_penalty: 0.02,
        marginal_noise: 0.45,
        seed: 5,
    });
    // Across many countries, the query-based greedy should regularly ask a
    // continent fact even though only population/ethnic facts are of
    // interest (with k = 3, one of the three questions can be "spent" on
    // the highly-correlated outside fact).
    let mut continent_asked = 0;
    for c in &countries {
        let tasks = QueryGreedySelector::new(c.interest)
            .select(&c.prior, 0.8, 3, &mut rng())
            .unwrap();
        if tasks
            .iter()
            .any(|&v| v == vars::CONTINENT_ASIA || v == vars::CONTINENT_EUROPE)
        {
            continent_asked += 1;
        }
    }
    assert!(
        continent_asked >= 5,
        "continent facts asked for only {continent_asked}/30 countries"
    );
}

#[test]
fn query_utility_improves_with_answers() {
    use crowdfusion::core::answers::posterior;
    use crowdfusion::core::query::query_utility;
    let countries = generate(CountryGenConfig::default());
    let c = &countries[0];
    let before = c.prior.restrict(c.interest).unwrap().entropy();
    // Ask the query-greedy's first pick and merge a correct answer.
    let tasks = QueryGreedySelector::new(c.interest)
        .select(&c.prior, 0.9, 1, &mut rng())
        .unwrap();
    assert_eq!(tasks.len(), 1);
    let answer = c.gold.get(tasks[0]);
    let post = posterior(&c.prior, &tasks, &[answer], 0.9).unwrap();
    let after = post.restrict(c.interest).unwrap().entropy();
    assert!(
        after < before,
        "H(I) should drop after an informative answer: {before} -> {after}"
    );
    // And the utility functional agrees in sign.
    let q_before = query_utility(&c.prior, c.interest, VarSet::EMPTY, 0.9).unwrap();
    assert!((q_before + before).abs() < 1e-9);
}

#[test]
fn interest_projection_is_consistent_with_joint() {
    let countries = generate(CountryGenConfig::default());
    for c in countries.iter().take(5) {
        let proj = c.prior.restrict(c.interest).unwrap();
        assert_eq!(proj.num_vars(), c.interest.len());
        // Projected marginals match the joint's marginals.
        for (j, v) in c.interest.iter().enumerate() {
            assert!((proj.marginal(j).unwrap() - c.prior.marginal(v).unwrap()).abs() < 1e-9);
        }
    }
}

#[test]
fn query_selector_rejects_empty_interest() {
    let facts = FactSet::running_example();
    let err = QueryGreedySelector::new(VarSet::EMPTY)
        .select(facts.dist(), 0.8, 1, &mut rng())
        .unwrap_err();
    assert_eq!(err, CoreError::EmptyInterestSet);
}
