//! Large-entity smoke test: an n = 32 correlated-fact book refines end to
//! end through the CLI pipeline — dataset generation, machine fusion,
//! sparse correlated prior, and both the direct and the (sparse-table)
//! preprocessed greedy selection — with traces bit-identical across
//! thread counts. This is the acceptance gate for lifting the dense
//! `2^n` fact ceiling; CI runs it as a dedicated release-mode step.

use crowdfusion::cli;

fn args(list: &[&str]) -> Vec<String> {
    list.iter().map(|s| s.to_string()).collect()
}

fn tmp(name: &str) -> String {
    let dir = std::env::temp_dir().join("crowdfusion-large-n-smoke");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name).to_string_lossy().into_owned()
}

#[test]
fn thirty_two_fact_books_refine_end_to_end() {
    let books = tmp("books32.json");
    let report = cli::run(&args(&[
        "generate-books",
        "--out",
        &books,
        "--books",
        "3",
        "--min-statements",
        "32",
        "--max-statements",
        "32",
        "--seed",
        "13",
    ]))
    .unwrap();
    assert!(report.contains("wrote 3 books"), "{report}");

    let refine = |selector: &str, threads: &str, csv: &str| {
        let report = cli::run(&args(&[
            "refine",
            "--dataset",
            &books,
            "--selector",
            selector,
            "--k",
            "3",
            "--budget",
            "9",
            "--pc",
            "0.8",
            "--seed",
            "21",
            "--threads",
            threads,
            "--csv",
            csv,
        ]))
        .unwrap_or_else(|e| panic!("refine --selector {selector} failed at n = 32: {e}"));
        assert!(report.contains("refined"), "{report}");
        std::fs::read_to_string(csv).unwrap()
    };

    // Direct selection, thread-count invariant.
    let direct_t1 = refine("greedy", "1", &tmp("direct_t1.csv"));
    let direct_t4 = refine("greedy", "4", &tmp("direct_t4.csv"));
    assert_eq!(
        direct_t1, direct_t4,
        "direct selection must be bit-identical across thread counts"
    );

    // Preprocessed selection (sparse answer table at n = 32), likewise.
    let pre_t1 = refine("greedy-pre", "1", &tmp("pre_t1.csv"));
    let pre_t4 = refine("greedy-pre", "4", &tmp("pre_t4.csv"));
    assert_eq!(
        pre_t1, pre_t4,
        "sparse preprocessed selection must be bit-identical across thread counts"
    );

    // Both paths spend the full budget: 3 books x 9 judgments.
    for csv in [&direct_t1, &pre_t1] {
        let parsed = crowdfusion::core::metrics::quality_points_from_csv(csv).unwrap();
        assert_eq!(parsed.last().unwrap().cost, 27);
    }

    std::fs::remove_file(&books).ok();
    for f in ["direct_t1.csv", "direct_t4.csv", "pre_t1.csv", "pre_t4.csv"] {
        std::fs::remove_file(tmp(f)).ok();
    }
}
