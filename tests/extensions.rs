//! Integration tests for the beyond-the-paper extensions, exercised through
//! the public facade: global budget allocation (§V-D's suggested fix),
//! sampled selection past the dense limit, EM answer aggregation, and the
//! executable Theorem 1 reduction.

use crowdfusion::core::hardness::solve_partition;
use crowdfusion::crowd::aggregation::em_aggregate;
use crowdfusion::pipeline::entity_cases_from_books;
use crowdfusion::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn global_allocation_runs_on_the_book_pipeline() {
    let books = crowdfusion::datagen::book::generate(BookGenConfig {
        n_books: 8,
        statements_per_book: (3, 10),
        seed: 19,
        ..BookGenConfig::quick()
    });
    let fusion = ModifiedCrh::default().fuse(&books.dataset).unwrap();
    let cases = entity_cases_from_books(&books, &fusion).unwrap();
    let total = 64;
    let config = GlobalBudgetConfig::new(total, 8, 0.85).unwrap();
    let mut platform = CrowdPlatform::new(
        WorkerPool::uniform(16, 0.85).unwrap(),
        UniformAccuracy::new(0.85),
        4,
    );
    let trace = run_global(&cases, config, &mut platform).unwrap();
    assert_eq!(trace.last().cost, total as u64);
    assert!(trace.last().utility > trace.points[0].utility);
    assert!(trace.selector.contains("global-budget"));
}

#[test]
fn sampled_selector_plugs_into_the_round_driver() {
    // The sampled selector is a drop-in TaskSelector: run it through the
    // same experiment machinery as the exact selectors.
    let books = crowdfusion::datagen::book::generate(BookGenConfig {
        n_books: 4,
        seed: 23,
        ..BookGenConfig::quick()
    });
    let fusion = ModifiedCrh::default().fuse(&books.dataset).unwrap();
    let cases = entity_cases_from_books(&books, &fusion).unwrap();
    let config = RoundConfig::new(2, 10, 0.8).unwrap();
    let experiment = Experiment::new(cases, config).unwrap();
    let mut platform = CrowdPlatform::new(
        WorkerPool::uniform(10, 0.8).unwrap(),
        UniformAccuracy::new(0.8),
        6,
    );
    let mut rng = StdRng::seed_from_u64(6);
    let trace = experiment
        .run(
            &SampledGreedySelector::new(1_500, 2),
            &mut platform,
            &mut rng,
        )
        .unwrap();
    assert_eq!(trace.last().cost, 4 * 10);
    assert!(trace.last().utility > trace.points[0].utility);
}

#[test]
fn em_aggregation_feeds_posterior_updates() {
    // Replicated crowd answers → EM aggregate → Bayesian merge: the
    // aggregated judgment behaves like a high-accuracy single answer.
    let facts = FactSet::running_example();
    let mut platform = CrowdPlatform::new(
        WorkerPool::uniform(9, 0.75).unwrap(),
        UniformAccuracy::new(0.75),
        31,
    );
    // Ask f1 eleven times (truth: true).
    let tasks: Vec<Task> = (0..11).map(|i| Task::new(i, "Is f1 true?")).collect();
    let answers = platform.publish(&tasks, &[true; 11]).unwrap();
    // All raw answers concern the same logical fact; aggregate per-answer
    // (each task id is distinct, so aggregate by majority over values).
    let yes = answers.iter().filter(|a| a.value).count();
    let aggregated = 2 * yes >= answers.len();
    let post =
        crowdfusion::core::answers::posterior(facts.dist(), &[0], &[aggregated], 0.9).unwrap();
    assert!(post.marginal(0).unwrap() > 0.8);
    // And the EM machinery handles the same raw answers without panicking
    // (single-vote tasks: posteriors follow the votes).
    let est = em_aggregate(&answers, 0.5, 20, 1e-6).unwrap();
    assert_eq!(est.answers.len(), 11);
}

#[test]
fn partition_reduction_through_facade() {
    // Theorem 1 end to end: PARTITION instances solved by task selection.
    assert!(solve_partition(&[10, 10]).unwrap().is_some());
    assert!(solve_partition(&[7, 5, 2]).unwrap().is_some()); // {7} vs {5,2}
    assert!(solve_partition(&[9, 4, 2]).unwrap().is_none());
}

#[test]
fn sparse_prior_round_trip_through_refinement() {
    // independent_sparse prior + exact greedy on a mid-size entity: the
    // refinement loop accepts sparse supports transparently.
    let marginals: Vec<f64> = (0..12).map(|i| 0.25 + 0.04 * i as f64).collect();
    let mut rng = StdRng::seed_from_u64(2);
    let prior = JointDist::independent_sparse(&marginals, 2_000, &mut rng).unwrap();
    let gold = Assignment(0b1010_1010_1010 & ((1 << 12) - 1));
    let case = EntityCase::simple("sparse", prior, gold);
    let config = RoundConfig::new(3, 18, 0.85).unwrap();
    let mut platform = CrowdPlatform::new(
        WorkerPool::uniform(12, 0.85).unwrap(),
        UniformAccuracy::new(0.85),
        9,
    );
    let mut seq = 0;
    let trace = crowdfusion::core::round::run_entity(
        &case,
        &GreedySelector::fast(),
        config,
        &mut platform,
        &mut rng,
        &mut seq,
    )
    .unwrap();
    assert_eq!(trace.total_cost(), 18);
    assert!(trace.final_utility() > trace.prior_utility);
}
