//! CI serve smoke: start the daemon, drive sessions end-to-end **over
//! TCP**, and diff the served trace against the offline `refine`
//! command's CSV artifact — the acceptance check that the serving layer
//! and the batch pipeline cannot drift apart.
//!
//! The flow mirrors a real deployment: `generate-books` writes a dataset,
//! `refine --threads 2 --csv` produces the offline quality curve, then a
//! daemon is opened with the same books (fusion marginals shipped in the
//! wire format) and fed crowd answers replayed from the per-session
//! recorded seeds — split into partial, duplicated deliveries. The
//! daemon's `Trace`, rendered through the same CSV writer, must equal the
//! offline file byte for byte.

use crowdfusion::pipeline::entity_specs_from_books;
use crowdfusion::service::protocol::{Request, Response};
use crowdfusion::service::{Client, OpenOptions, Selected, SelectorChoice, Service, ServiceConfig};
use crowdfusion_core::metrics::quality_points_to_csv;
use crowdfusion_core::round::RoundConfig;
use crowdfusion_core::session::EntitySpec;
use crowdfusion_crowd::{AnswerReplay, Task, TaskId, UniformAccuracy, WorkerPool};
use crowdfusion_datagen::export;
use crowdfusion_fusion::{FusionMethod, ModifiedCrh};
use std::net::TcpListener;
use std::path::Path;
use std::sync::Arc;

const SEED: u64 = 7;
const PC: f64 = 0.8;
const K: usize = 2;
const BUDGET: usize = 8;
/// `refine` builds its crowd with a 30-worker uniform pool; the smoke
/// test's replayed streams must draw from an identical pool.
const REFINE_WORKERS: usize = 30;

fn tmp(name: &str) -> String {
    let dir = std::env::temp_dir().join("crowdfusion-serve-smoke");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name).to_string_lossy().into_owned()
}

fn cli(args: &[&str]) -> String {
    let owned: Vec<String> = args.iter().map(|s| s.to_string()).collect();
    crowdfusion::cli::run(&owned).expect("cli command succeeds")
}

#[test]
fn served_sessions_match_offline_refine_over_tcp() {
    // 1. Dataset + offline reference through the public CLI.
    let books_path = tmp("books.json");
    let offline_csv = tmp("offline.csv");
    cli(&[
        "generate-books",
        "--out",
        &books_path,
        "--books",
        "5",
        "--seed",
        "3",
    ]);
    cli(&[
        "refine",
        "--dataset",
        &books_path,
        "--k",
        "2",
        "--budget",
        "8",
        "--pc",
        "0.8",
        "--seed",
        "7",
        "--threads",
        "2",
        "--csv",
        &offline_csv,
    ]);
    let offline = std::fs::read_to_string(&offline_csv).unwrap();

    // 2. The same books in the service wire format (refine's default
    //    fusion method is modified CRH).
    let books = export::load_books(Path::new(&books_path)).unwrap();
    let fusion = ModifiedCrh::default().fuse(&books.dataset).unwrap();
    let specs: Vec<EntitySpec> = entity_specs_from_books(&books, &fusion);

    // 3. Daemon on a loopback socket, same seed/config as refine.
    let service = Arc::new(
        Service::new(ServiceConfig::new(
            SEED,
            RoundConfig::new(K, BUDGET, PC).unwrap(),
            2,
            SelectorChoice::Greedy,
        ))
        .unwrap(),
    );
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let daemon = {
        let service = Arc::clone(&service);
        std::thread::spawn(move || crowdfusion::service::serve_tcp(service, listener))
    };

    // 4. Open every book in entity order; drive each session to
    //    exhaustion with crowd answers replayed from the recorded seeds,
    //    delivered as two partial batches with a duplicated answer. The
    //    whole drive goes through the typed session-handle API — the
    //    surface integrators program against.
    let mut client = Client::connect(addr).unwrap();
    client.hello().unwrap();
    let sessions = client
        .open_all(specs.clone(), OpenOptions::default())
        .unwrap();
    assert_eq!(sessions.len(), specs.len());
    let pool = WorkerPool::uniform(REFINE_WORKERS, PC).unwrap();
    let model = UniformAccuracy::new(PC);
    for (spec, info) in specs.iter().zip(&sessions) {
        let mut replay = AnswerReplay::from_seed(info.answer_seed);
        let mut handle = client.session(info.session);
        loop {
            let tasks = match handle.select().unwrap() {
                Selected::Round { tasks, .. } => tasks,
                Selected::Exhausted { spent, .. } => {
                    assert_eq!(spent, BUDGET, "session {} spent", info.session);
                    break;
                }
            };
            let crowd_tasks: Vec<Task> = tasks
                .iter()
                .map(|t| Task {
                    id: TaskId(t.id),
                    prompt: t.prompt.clone(),
                    class: t.class,
                })
                .collect();
            let truths: Vec<bool> = tasks.iter().map(|t| spec.gold[t.fact]).collect();
            let answers: Vec<(u64, bool)> = replay
                .answers(&pool, &model, &crowd_tasks, &truths)
                .unwrap()
                .iter()
                .map(|a| (a.task.0, a.value))
                .collect();
            // Reversed order + duplicate first delivery: the daemon must
            // reassemble the round regardless.
            let mut scrambled: Vec<(u64, bool)> = answers.iter().rev().copied().collect();
            scrambled.push(scrambled[0]);
            let mut absorbed = 0;
            let mut duplicates_seen = 0;
            for batch in scrambled.chunks(2) {
                let report = handle.absorb(batch).unwrap();
                absorbed += report.accepted;
                duplicates_seen += report.duplicates;
            }
            assert_eq!(absorbed, answers.len());
            assert_eq!(duplicates_seen, 1);
        }
    }

    // 5. The served trace, rendered through the same CSV writer, equals
    //    the offline refine artifact byte for byte.
    let Response::Trace { trace } = client.roundtrip(&Request::Trace).unwrap() else {
        panic!("trace failed");
    };
    let served = quality_points_to_csv(&trace.points);
    assert_eq!(served, offline, "served trace drifted from offline refine");

    // 6. Clean shutdown.
    assert_eq!(client.roundtrip(&Request::Shutdown).unwrap(), Response::Bye);
    daemon.join().unwrap().unwrap();
    for f in [&books_path, &offline_csv] {
        std::fs::remove_file(f).ok();
    }
}
