//! Integration test: every number the paper derives from its running
//! example, checked through the public facade API.

use crowdfusion::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const PC: f64 = 0.8;

#[test]
fn table_i_marginals() {
    let facts = FactSet::running_example();
    let m = facts.marginals();
    let expected = [0.50, 0.63, 0.58, 0.49];
    for (got, want) in m.iter().zip(expected) {
        assert!((got - want).abs() < 1e-9, "marginal {got} != {want}");
    }
}

#[test]
fn table_ii_rows_and_normalisation() {
    let facts = FactSet::running_example();
    let d = facts.dist();
    assert_eq!(d.support_size(), 16);
    assert!((d.total_mass() - 1.0).abs() < 1e-12);
    // Spot rows: o1 = FFFF (0.03), o7 = FTTF (0.11), o16 = TTTT (0.11).
    assert!((d.prob(Assignment(0b0000)) - 0.03).abs() < 1e-12);
    assert!((d.prob(Assignment(0b0110)) - 0.11).abs() < 1e-12);
    assert!((d.prob(Assignment(0b1111)) - 0.11).abs() < 1e-12);
}

#[test]
fn table_iv_answer_distribution() {
    let facts = FactSet::running_example();
    let ans =
        answer_distribution(facts.dist(), VarSet::all(4), PC, AnswerEvaluator::Butterfly).unwrap();
    // a1 (all false) = 0.049, a16 (all true) = 0.085 per the paper.
    assert!((ans[0b0000] - 0.049).abs() < 5e-4);
    assert!((ans[0b1111] - 0.085).abs() < 5e-4);
    assert!((ans.iter().sum::<f64>() - 1.0).abs() < 1e-9);
}

#[test]
fn section_iii_a_posterior_update() {
    let facts = FactSet::running_example();
    // P(e) = 0.5 for a "yes" on f1.
    let ans =
        answer_distribution(facts.dist(), VarSet::single(0), PC, AnswerEvaluator::Naive).unwrap();
    assert!((ans[1] - 0.5).abs() < 1e-9, "P(e) = {}", ans[1]);
    let post = posterior(facts.dist(), &[0], &[true], PC).unwrap();
    assert!((post.prob(Assignment(0b0000)) - 0.012).abs() < 1e-9);
    assert!((post.prob(Assignment(0b0001)) - 0.064).abs() < 1e-9);
}

#[test]
fn section_iii_d_greedy_walkthrough() {
    let facts = FactSet::running_example();
    let mut rng = StdRng::seed_from_u64(0);
    // First pick: f1 with H = 1 bit.
    let first = GreedySelector::fast()
        .select(facts.dist(), PC, 1, &mut rng)
        .unwrap();
    assert_eq!(first, vec![0]);
    let h1 = answer_entropy(
        facts.dist(),
        VarSet::single(0),
        PC,
        AnswerEvaluator::Butterfly,
    )
    .unwrap();
    assert!((h1 - 1.0).abs() < 1e-9);
    // Second pick: f4, reaching H({f1, f4}) = 1.997.
    let both = GreedySelector::fast()
        .select(facts.dist(), PC, 2, &mut rng)
        .unwrap();
    assert_eq!(both, vec![0, 3]);
    let h2 = answer_entropy(
        facts.dist(),
        VarSet::from_vars([0, 3]),
        PC,
        AnswerEvaluator::Butterfly,
    )
    .unwrap();
    assert!((h2 - 1.997).abs() < 5e-4);
}

#[test]
fn opt_agrees_with_greedy_on_running_example() {
    let facts = FactSet::running_example();
    let mut rng = StdRng::seed_from_u64(0);
    let opt = OptSelector::new(AnswerEvaluator::Naive)
        .select(facts.dist(), PC, 2, &mut rng)
        .unwrap();
    assert_eq!(opt, vec![0, 3]);
}

#[test]
fn utility_definition_matches_entropy() {
    let facts = FactSet::running_example();
    assert!((facts.utility() + facts.dist().entropy()).abs() < 1e-12);
    // H(Crowd) for the paper's error model at Pc = 0.8.
    assert!((binary_entropy(0.8) - 0.721928).abs() < 1e-5);
}
