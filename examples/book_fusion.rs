//! End-to-end book fusion: the paper's evaluation pipeline in miniature.
//!
//! Generates a synthetic Book dataset (the stand-in for the paper's
//! AbeBooks author-list data), initialises with the modified CRH framework
//! (Section V-A), then refines with CrowdFusion rounds against a simulated
//! crowd — comparing greedy task selection with the random baseline.
//!
//! Run with: `cargo run --release --example book_fusion`

use crowdfusion::pipeline::entity_cases_from_books;
use crowdfusion::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // 1. Dataset: 40 books, 12 sources (2 domain specialists).
    let config = BookGenConfig {
        n_books: 40,
        ..BookGenConfig::default()
    };
    let books = crowdfusion::datagen::book::generate(config);
    println!(
        "dataset: {} books, {} statements, {} sources, {} claims",
        books.dataset.entities().len(),
        books.dataset.statements().len(),
        books.dataset.sources().len(),
        books.dataset.claims().len()
    );
    println!(
        "raw claims correct: {:.1}% (paper: \"around 50%\")",
        100.0 * books.raw_claim_true_rate()
    );

    // 2. Machine-only initialisation: the paper's modified CRH.
    let fusion = ModifiedCrh::default().fuse(&books.dataset).unwrap();
    println!(
        "modified CRH statement accuracy vs gold: {:.3}",
        fusion.accuracy_against(&books.gold)
    );

    // 3. CrowdFusion refinement: budget 60 per book, k = 2, Pc = 0.8.
    let pc = 0.8;
    let cases = entity_cases_from_books(&books, &fusion).unwrap();
    let round_config = RoundConfig::new(2, 60, pc).unwrap();
    let experiment = Experiment::new(cases, round_config).unwrap();

    for (label, selector) in [
        (
            "greedy (Approx.)",
            &GreedySelector::fast() as &dyn TaskSelector,
        ),
        ("random baseline", &RandomSelector),
    ] {
        let mut platform = CrowdPlatform::new(
            WorkerPool::uniform(25, pc).unwrap(),
            UniformAccuracy::new(pc),
            7,
        );
        let mut rng = StdRng::seed_from_u64(7);
        let trace = experiment.run(selector, &mut platform, &mut rng).unwrap();
        let first = &trace.points[0];
        let last = trace.last();
        println!("\n== {label} ==");
        println!(
            "  cost 0    : utility = {:8.2}, F1 = {:.3}",
            first.utility, first.f1
        );
        // Print a few intermediate points for the quality curve.
        for point in trace.points.iter().skip(1).step_by(6) {
            println!(
                "  cost {:4} : utility = {:8.2}, F1 = {:.3}",
                point.cost, point.utility, point.f1
            );
        }
        println!(
            "  cost {:4} : utility = {:8.2}, F1 = {:.3}  (final)",
            last.cost, last.utility, last.f1
        );
    }

    println!("\nGreedy reaches higher utility and F1 at every budget level,");
    println!("matching the shape of the paper's Figures 2–3.");
}
