//! Quickstart: the paper's running example, end to end.
//!
//! Reproduces Tables I–IV of the paper, the worked Bayesian update of
//! Section III-A and the greedy selection walk-through of Section III-D,
//! then runs a full budgeted refinement loop against a simulated crowd.
//!
//! Run with: `cargo run --example quickstart`

use crowdfusion::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let facts = FactSet::running_example();
    let pc = 0.8;

    println!("== Table I: facts with marginal probabilities ==");
    for (fact, marginal) in facts.facts().iter().zip(facts.marginals()) {
        println!("  {fact}  P = {marginal:.2}");
    }

    println!("\n== Table II: output joint distribution (16 rows) ==");
    println!("  f1 f2 f3 f4   P(o)");
    for (o, p) in facts.dist().iter() {
        let row: String = (0..4)
            .map(|v| if o.get(v) { " T " } else { " F " })
            .collect();
        println!("  {row}  {p:.2}");
    }
    println!("  joint entropy H(F) = {:.3} bits", facts.dist().entropy());
    println!("  utility Q(F) = {:.3}", facts.utility());

    println!("\n== Table IV: answer joint distribution at Pc = {pc} ==");
    let answers =
        answer_distribution(facts.dist(), VarSet::all(4), pc, AnswerEvaluator::Butterfly).unwrap();
    println!("  f1 f2 f3 f4   P(ans)");
    for (idx, p) in answers.iter().enumerate() {
        let row: String = (0..4)
            .map(|v| if (idx >> v) & 1 == 1 { " T " } else { " F " })
            .collect();
        println!("  {row}  {p:.3}");
    }

    println!("\n== Section III-A: merging a crowd answer (Equation 3) ==");
    println!("  Ask \"Is Hong Kong an Asia city?\" (f1); the crowd says YES.");
    let post = posterior(facts.dist(), &[0], &[true], pc).unwrap();
    println!(
        "  P(o1 | e) = {:.3} (paper: 0.012), P(o9 | e) = {:.3} (paper: 0.064)",
        post.prob(Assignment(0b0000)),
        post.prob(Assignment(0b0001)),
    );

    println!("\n== Section III-D: greedy task selection (Algorithm 1) ==");
    let mut rng = StdRng::seed_from_u64(1);
    for k in 1..=3 {
        let tasks = GreedySelector::fast()
            .select(facts.dist(), pc, k, &mut rng)
            .unwrap();
        let h = answer_entropy(
            facts.dist(),
            VarSet::from_vars(tasks.iter().copied()),
            pc,
            AnswerEvaluator::Butterfly,
        )
        .unwrap();
        let names: Vec<String> = tasks.iter().map(|t| format!("f{}", t + 1)).collect();
        println!(
            "  k = {k}: select {{{}}} with H(T) = {h:.3}",
            names.join(", ")
        );
    }

    println!("\n== Budgeted refinement against a simulated crowd ==");
    // Hidden gold truth: Asia, large population, Chinese majority, not
    // Europe.
    let gold = Assignment(0b0111);
    let case = EntityCase::simple("Hong Kong", facts.dist().clone(), gold);
    let config = RoundConfig::new(2, 12, pc).unwrap();
    let mut platform = CrowdPlatform::new(
        WorkerPool::uniform(10, pc).unwrap(),
        UniformAccuracy::new(pc),
        42,
    );
    let trace = crowdfusion::core::round::run_entity(
        &case,
        &GreedySelector::fast(),
        config,
        &mut platform,
        &mut rng,
        &mut 0,
    )
    .unwrap();
    println!("  prior utility = {:.3}", trace.prior_utility);
    for point in &trace.points {
        let tasks: Vec<String> = point.tasks.iter().map(|t| format!("f{}", t + 1)).collect();
        println!(
            "  round {} (cost {:2}): asked {{{}}}, utility -> {:.3}",
            point.round,
            point.cost,
            tasks.join(", "),
            point.utility
        );
    }
    let recovered = trace.posterior.map_truth();
    println!(
        "  recovered truth = {} (gold = {}) — {}",
        recovered.display(4),
        gold.display(4),
        if recovered == gold {
            "correct"
        } else {
            "wrong"
        }
    );
}
