//! Query-based CrowdFusion (paper Section IV) on correlated country facts.
//!
//! Users only care about population and demographic facts (the facts of
//! interest `I`), but continent facts remain worth asking because they
//! correlate with both — "Asia countries tend to have large population".
//! This example shows the query-based greedy exploiting that correlation
//! and compares it against (a) the general selector and (b) a selector
//! restricted to asking only facts inside `I`.
//!
//! Run with: `cargo run --release --example query_based`

use crowdfusion::datagen::country::{generate, vars};
use crowdfusion::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let countries = generate(CountryGenConfig {
        n_countries: 15,
        // Strong correlations: continent (not of interest) nearly decides
        // the population/ethnic facts (of interest), and the machine prior
        // is noisy — the regime Section IV is about.
        implication_penalty: 0.08,
        exclusivity_penalty: 0.02,
        marginal_noise: 0.45,
        ..CountryGenConfig::default()
    });
    let pc = 0.8;
    let budget = 6usize;

    println!("== per-country fact structure ==");
    let sample = &countries[0];
    for (v, label) in sample.labels.iter().enumerate() {
        let marker = if sample.interest.contains(v) {
            "(interest)"
        } else {
            "          "
        };
        println!("  f{v}: {label} {marker}");
    }

    // What does the query-based greedy ask first?
    let mut rng = StdRng::seed_from_u64(3);
    let selector = QueryGreedySelector::new(sample.interest);
    let picked = selector.select(&sample.prior, pc, 3, &mut rng).unwrap();
    println!(
        "\nquery-based greedy asks (k = 3): {:?}",
        picked
            .iter()
            .map(|&v| sample.labels[v].as_str())
            .collect::<Vec<_>>()
    );
    let asks_continent = picked
        .iter()
        .any(|&v| v == vars::CONTINENT_ASIA || v == vars::CONTINENT_EUROPE);
    println!("  continent asked even though it is not of interest: {asks_continent}");

    // Run the budget loop for three strategies and compare the posterior
    // entropy of the facts of interest.
    println!("\n== H(I) after spending {budget} judgments per country ==");
    for (label, interest_only) in [
        ("query-based greedy over all facts", false),
        ("greedy restricted to I only", true),
    ] {
        let mut h_interest_total = 0.0;
        let mut correct = 0usize;
        let mut total = 0usize;
        for (i, country) in countries.iter().enumerate() {
            let mut dist = country.prior.clone();
            let mut platform = CrowdPlatform::new(
                WorkerPool::uniform(10, pc).unwrap(),
                UniformAccuracy::new(pc),
                1000 + i as u64,
            );
            let mut rng = StdRng::seed_from_u64(2000 + i as u64);
            let mut remaining = budget;
            let mut seq = 0u64;
            while remaining > 0 {
                let k = remaining.min(2);
                let tasks = if interest_only {
                    // Restrict the candidate pool by selecting over the
                    // projection onto I, then mapping back.
                    let members = country.interest.to_vec();
                    let proj = dist.restrict(country.interest).unwrap();
                    let sel = QueryGreedySelector::new(VarSet::all(members.len()));
                    sel.select(&proj, pc, k, &mut rng)
                        .unwrap()
                        .into_iter()
                        .map(|j| members[j])
                        .collect::<Vec<_>>()
                } else {
                    QueryGreedySelector::new(country.interest)
                        .select(&dist, pc, k, &mut rng)
                        .unwrap()
                };
                if tasks.is_empty() {
                    break;
                }
                let crowd_tasks: Vec<Task> = tasks
                    .iter()
                    .map(|&f| {
                        seq += 1;
                        Task::new(seq, country.labels[f].clone())
                    })
                    .collect();
                let truths: Vec<bool> = tasks.iter().map(|&f| country.gold.get(f)).collect();
                let answers = platform.publish(&crowd_tasks, &truths).unwrap();
                let judgments: Vec<bool> = answers.iter().map(|a| a.value).collect();
                dist =
                    crowdfusion::core::answers::posterior(&dist, &tasks, &judgments, pc).unwrap();
                remaining -= tasks.len();
            }
            let marginal_dist = dist.restrict(country.interest).unwrap();
            h_interest_total += marginal_dist.entropy();
            // Accuracy on the facts of interest.
            let predicted = dist.map_truth();
            for v in country.interest.iter() {
                total += 1;
                if predicted.get(v) == country.gold.get(v) {
                    correct += 1;
                }
            }
        }
        println!(
            "  {label:36} Σ H(I) = {h_interest_total:6.3} bits, accuracy on I = {:.3}",
            correct as f64 / total as f64
        );
    }

    println!("\nExploiting cross-fact correlation (asking continent facts when");
    println!("they are informative) yields lower residual entropy on the facts");
    println!("of interest at the same budget — the motivation of Section IV.");
}
