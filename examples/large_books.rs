//! Beyond the dense limit: CrowdFusion on a 32-statement book.
//!
//! The paper's efficiency experiments single out "books with facts more
//! than 20" — exactly where dense `2^n` answer tables stop being feasible.
//! This example runs the full refinement loop on a 32-statement book using
//! the two scalability extensions:
//!
//! * a sparse Monte-Carlo prior (`JointDist::independent_sparse`), and
//! * the sampled greedy selector (`SampledGreedySelector`), whose `H(T)`
//!   estimates need no dense tables.
//!
//! Run with: `cargo run --release --example large_books`

use crowdfusion::pipeline::gold_assignment;
use crowdfusion::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // One big book: 32 candidate author-list statements.
    let books = crowdfusion::datagen::book::generate(BookGenConfig {
        n_books: 1,
        statements_per_book: (32, 32),
        authors_per_book: (3, 4),
        seed: 5,
        ..BookGenConfig::default()
    });
    let entity = books.dataset.entities()[0].id;
    let n = books.dataset.statements_of(entity).len();
    println!(
        "book with {n} candidate statements (dense 2^{n} table would need ~{} GiB)",
        (1u128 << n) * 8 / (1 << 30)
    );

    // Machine prior: modified CRH marginals, lifted into a sparse
    // Monte-Carlo joint (the dense factor-graph path rejects n > 26).
    let fusion = ModifiedCrh::default().fuse(&books.dataset).unwrap();
    let marginals = fusion.entity_marginals(&books.dataset, entity);
    let mut rng = StdRng::seed_from_u64(11);
    let prior = JointDist::independent_sparse(&marginals, 65_536, &mut rng).unwrap();
    println!(
        "sparse prior: support {} of 2^{n} assignments, H = {:.2} bits",
        prior.support_size(),
        prior.entropy()
    );

    let gold = gold_assignment(&books.gold_for(entity));
    let case = EntityCase {
        name: books.dataset.entities()[0].name.clone(),
        prior,
        gold,
        prompts: books
            .dataset
            .statements_of(entity)
            .iter()
            .map(|s| format!("Is \"{}\" correct?", books.dataset.statement_text(*s)))
            .collect(),
        classes: books.classes_for(entity),
    };

    let pc = 0.8;
    let seeds = 5u64;
    let config = RoundConfig::new(4, 40, pc).unwrap();
    println!(
        "\nrefining with budget {} at Pc = {pc} ({seeds}-seed averages):",
        config.budget
    );
    for (label, selector) in [
        (
            "sampled greedy",
            &SampledGreedySelector::new(2_000, 3) as &dyn TaskSelector,
        ),
        ("random", &RandomSelector),
    ] {
        let mut utility = 0.0;
        let mut accuracy = 0.0;
        let mut f1 = 0.0;
        let mut prior_utility = 0.0;
        for seed in 0..seeds {
            let mut platform = CrowdPlatform::new(
                WorkerPool::uniform(20, pc).unwrap(),
                UniformAccuracy::new(pc),
                17 + seed,
            );
            let mut rng = StdRng::seed_from_u64(17 + seed);
            let mut seq = 0u64;
            let trace = crowdfusion::core::round::run_entity(
                &case,
                selector,
                config,
                &mut platform,
                &mut rng,
                &mut seq,
            )
            .unwrap();
            let mut counts = ConfusionCounts::default();
            counts.add_marginals(&trace.posterior.marginals(), gold);
            prior_utility = trace.prior_utility;
            utility += trace.final_utility() / seeds as f64;
            accuracy += counts.accuracy() / seeds as f64;
            f1 += counts.f1() / seeds as f64;
        }
        println!(
            "  {label:<16} utility {prior_utility:.2} -> {utility:.2}, \
             statement accuracy {accuracy:.3}, F1 {f1:.3}"
        );
    }
    println!("\nThe sampled selector reaches lower residual entropy at equal");
    println!("budget without ever materialising an exact answer distribution.");
    println!("(Caveat measured honestly here: with a sparse Monte-Carlo prior");
    println!("the posterior lives on the sampled support, so entropy-greedy");
    println!("can leave an unlucky fact mislabelled while random's even");
    println!("coverage corrects it — the price of approximating 2^n.)");
}
