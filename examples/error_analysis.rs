//! Error analysis (paper Section V-D): which statements stay wrong?
//!
//! The paper manually categorised the residual errors after crowdsourcing
//! into three confusion classes — wrong order (true but looks wrong),
//! additional information and misspelling (false but look right). This
//! example reproduces that analysis: it runs CrowdFusion with a
//! difficulty-aware crowd (per-class accuracies calibrated to the paper's
//! observations) and reports the residual error rate per class.
//!
//! Run with: `cargo run --release --example error_analysis`

use crowdfusion::pipeline::entity_cases_from_books;
use crowdfusion::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let books = crowdfusion::datagen::book::generate(BookGenConfig {
        n_books: 60,
        ..BookGenConfig::default()
    });
    let fusion = ModifiedCrh::default().fuse(&books.dataset).unwrap();
    let cases = entity_cases_from_books(&books, &fusion).unwrap();
    let pc = 0.86; // the paper's measured worker accuracy
    let config = RoundConfig::new(2, 60, pc).unwrap();
    let experiment = Experiment::new(cases.clone(), config).unwrap();

    // The difficulty-aware crowd: clean statements at Pc, confusing classes
    // degraded as observed in Section V-D (misspellings below chance).
    let model = ClassAccuracy::paper_defaults(pc);
    let mut platform = CrowdPlatform::new(WorkerPool::uniform(30, pc).unwrap(), model, 23);
    let mut rng = StdRng::seed_from_u64(23);
    let trace = experiment
        .run(&GreedySelector::fast(), &mut platform, &mut rng)
        .unwrap();
    println!(
        "refined overall F1 = {:.3} (machine-only was {:.3})",
        trace.last().f1,
        trace.points[0].f1
    );

    // Re-run entity by entity to recover per-statement predictions.
    let mut per_class: std::collections::HashMap<&str, (usize, usize)> = Default::default();
    let mut platform = CrowdPlatform::new(WorkerPool::uniform(30, pc).unwrap(), model, 23);
    let mut rng = StdRng::seed_from_u64(23);
    let mut seq = 0u64;
    let round_config = RoundConfig::new(2, 60, pc).unwrap();
    for case in &cases {
        let trace = crowdfusion::core::round::run_entity(
            case,
            &GreedySelector::fast(),
            round_config,
            &mut platform,
            &mut rng,
            &mut seq,
        )
        .unwrap();
        let predicted = trace.posterior.map_truth();
        for (i, class) in case.classes.iter().enumerate() {
            let entry = per_class.entry(class.label()).or_insert((0, 0));
            entry.1 += 1;
            if predicted.get(i) != case.gold.get(i) {
                entry.0 += 1;
            }
        }
    }

    println!("\n== residual errors by statement class (Section V-D) ==");
    println!(
        "{:<18} {:>8} {:>8} {:>12}",
        "class", "errors", "total", "error rate"
    );
    let mut classes: Vec<_> = per_class.iter().collect();
    classes.sort_by_key(|(label, _)| *label);
    for (label, (errors, total)) in classes {
        println!(
            "{label:<18} {errors:>8} {total:>8} {:>11.1}%",
            100.0 * *errors as f64 / (*total).max(1) as f64
        );
    }

    println!("\nAs in the paper, the confusing classes (wrong-order variants,");
    println!("added organisation info, misspellings) dominate the residual");
    println!("errors, while clean statements are resolved almost completely.");
    println!("The fix the paper suggests — worker guidance plus more budget —");
    println!("corresponds to raising the per-class accuracies above 0.5.");
}
