//! Initialiser-agnosticism: CrowdFusion on top of four fusion methods.
//!
//! "CrowdFusion can be initialized by any existing probability-based data
//! fusion method, or simply set to uniform distribution" (Section III).
//! This example fuses the same synthetic Book dataset with majority voting,
//! CRH, modified CRH, TruthFinder and ACCU, then runs identical CrowdFusion
//! refinement on each and reports machine-only vs refined F1.
//!
//! Run with: `cargo run --release --example compare_initializers`

use crowdfusion::pipeline::entity_cases_from_books;
use crowdfusion::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let books = crowdfusion::datagen::book::generate(BookGenConfig {
        n_books: 30,
        ..BookGenConfig::default()
    });
    let pc = 0.8;
    let methods: Vec<Box<dyn FusionMethod>> = vec![
        Box::new(MajorityVote),
        Box::new(Crh::default()),
        Box::new(ModifiedCrh::default()),
        Box::new(TruthFinder::default()),
        Box::new(AccuVote::default()),
    ];

    println!(
        "{:<14} {:>12} {:>12} {:>12} {:>14}",
        "initialiser", "machine F1", "refined F1", "final util", "cost"
    );
    for method in methods {
        let fusion = match method.fuse(&books.dataset) {
            Ok(f) => f,
            Err(e) => {
                println!("{:<14} failed: {e}", method.name());
                continue;
            }
        };
        let cases = entity_cases_from_books(&books, &fusion).unwrap();
        let config = RoundConfig::new(2, 40, pc).unwrap();
        let experiment = Experiment::new(cases, config).unwrap();
        let mut platform = CrowdPlatform::new(
            WorkerPool::uniform(20, pc).unwrap(),
            UniformAccuracy::new(pc),
            11,
        );
        let mut rng = StdRng::seed_from_u64(11);
        let trace = experiment
            .run(&GreedySelector::fast(), &mut platform, &mut rng)
            .unwrap();
        let machine_f1 = trace.points[0].f1;
        let last = trace.last();
        println!(
            "{:<14} {:>12.3} {:>12.3} {:>12.2} {:>14}",
            method.name(),
            machine_f1,
            last.f1,
            last.utility,
            last.cost
        );
    }

    println!("\nEvery initialiser is improved by the same crowd budget; better");
    println!("machine priors start higher but converge to similar refined quality —");
    println!("the behaviour the paper claims for probability-based initialisers.");
}
