//! The `crowdfusion` command-line tool.
//!
//! Thin, dependency-free argument handling over the library pipeline:
//!
//! ```text
//! crowdfusion generate-books  --out books.json [--books N] [--sources N] [--seed S]
//!                             [--min-statements N] [--max-statements N]
//! crowdfusion generate-countries --out countries.json [--countries N] [--seed S]
//! crowdfusion fuse            --dataset books.json --method NAME [--out fusion.json]
//!                             [--report report.json]
//! crowdfusion refine          --dataset books.json [--method NAME] [--k K] [--budget B]
//!                             [--pc PC] [--selector greedy|greedy-pre|random] [--seed S]
//!                             [--threads N] [--out trace.json] [--csv trace.csv]
//! crowdfusion serve           [--config FILE] [--addr HOST:PORT] [--transport tcp|stdio]
//!                             [--threads N] [--shards N] [--selector NAME] [--method NAME]
//!                             [--k K] [--budget B] [--pc PC] [--seed S]
//!                             [--ready-file PATH] [--snapshot-dir DIR]
//!                             [--wal-dir DIR] [--snapshot-every N] [--sync-every N]
//!                             [--group-commit BOOL] [--session-ttl-ms MS]
//!                             [--read-deadline-ms MS] [--max-line-bytes N]
//!                             [--budget-mode per-session|global] [--global-budget N]
//! crowdfusion demo            # the paper's running example
//! ```
//!
//! All commands are pure functions of their arguments (seeded RNG) plus
//! one environment variable, so runs are reproducible byte for byte:
//! `refine --threads N` shards entities across the selection engine's
//! pool without changing results (per-entity RNG streams are derived from
//! the seed, not the schedule — any `N ≥ 1` is byte-identical). When the
//! flag is absent, `CROWDFUSION_THREADS` opts into the same sharded
//! engine; with neither, the legacy serial interleaved run is used, whose
//! trace differs numerically from the sharded one (different RNG
//! scheduling, same statistics).

use crate::pipeline::entity_cases_from_books;
use crowdfusion_core::metrics::quality_points_to_csv;
use crowdfusion_core::round::RoundConfig;
use crowdfusion_core::selection::{GreedySelector, RandomSelector, TaskSelector};
use crowdfusion_core::system::Experiment;
use crowdfusion_crowd::{CrowdPlatform, UniformAccuracy, WorkerPool};
use crowdfusion_datagen::book::generate as generate_books;
use crowdfusion_datagen::country::generate as generate_countries;
use crowdfusion_datagen::{export, BookGenConfig, CountryGenConfig, GeneratedBooks};
use crowdfusion_fusion::{
    FusionMethod, FusionReport, FusionResult, StrategyRegistry, DEFAULT_METHOD,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Usage text printed by `help` and on argument errors.
pub const USAGE: &str = "\
crowdfusion — crowdsourced data fusion refinement (ICDE 2017 reproduction)

USAGE:
  crowdfusion generate-books --out PATH [--books N] [--sources N] [--seed S]
                             [--min-statements N] [--max-statements N]
                             [--attributes true|false]
  crowdfusion generate-countries --out PATH [--countries N] [--seed S]
  crowdfusion fuse --dataset PATH --method NAME [--out PATH] [--report PATH]
  crowdfusion refine --dataset PATH [--method NAME] [--k K] [--budget B]
                     [--pc PC] [--selector greedy|greedy-pre|random] [--seed S]
                     [--threads N] [--out trace.json] [--csv trace.csv]
  crowdfusion serve  [--config FILE] [--addr HOST:PORT] [--transport tcp|stdio]
                     [--threads N] [--shards N]
                     [--selector greedy|greedy-pre|random] [--method NAME]
                     [--k K] [--budget B]
                     [--pc PC] [--seed S] [--ready-file PATH] [--snapshot-dir DIR]
                     [--wal-dir DIR] [--snapshot-every N] [--sync-every N]
                     [--group-commit BOOL] [--session-ttl-ms MS]
                     [--read-deadline-ms MS] [--max-line-bytes N]
                     [--budget-mode per-session|global] [--global-budget N]
  crowdfusion demo
  crowdfusion help

Fusion methods (the strategy registry; modified-crh is the default):
  uniform, majority, crh, modified-crh, truthfinder, accu — global methods;
  vote, weighted-vote, trust-vote, favour-sources — voting resolvers;
  numeric-average, numeric-median, most-recent, list-union — typed resolvers;
  per-attribute — the composite (authors/pages/published routed to their
  resolvers, modified-crh fallback).
fuse --report PATH writes the JSON fusion report (density, per-attribute
coverage, conflict stats, full provenance) — byte-stable across runs and
thread counts. serve --method NAME validates the daemon's default method
against the registry at startup.
Environment: CROWDFUSION_THREADS=N is the default for refine/serve --threads.
serve speaks line-delimited JSON (one request per line; see crowdfusion_service)
over TCP (default 127.0.0.1:7464) or stdio; --ready-file receives the bound
address once the daemon is listening; --snapshot-dir confines client
Snapshot/Restore paths to bare file names inside DIR. --wal-dir makes the
daemon crash-safe: mutations are journalled there before they apply, the
registry auto-snapshots every --snapshot-every effects (journal fsync
batched per --sync-every appends), and a restart recovers every session.
--session-ttl-ms evicts idle sessions; --read-deadline-ms closes silent
connections; --max-line-bytes bounds one protocol line. serve --config FILE
loads all of the above from one JSON document (partial files merge over the
defaults; explicit flags still win); --shards sets the registry lock-stripe
count (traces are identical at any value); --group-commit true batches
journal fsyncs per event-loop ready-batch. --budget-mode global grants one
shared pool of --global-budget judgments spent across ALL sessions in
descending marginal-gain order: the Schedule verb admits the best idle
session, Select on a non-preferred session answers Deferred, and
BudgetStatus reports the shared ledger.
";

/// Parsed flag map: `--name value` pairs. Ordered so diagnostics (e.g.
/// which unknown flag gets reported) don't depend on hash order.
struct Flags(BTreeMap<String, String>);

impl Flags {
    fn parse(args: &[String]) -> Result<Flags, String> {
        let mut map = BTreeMap::new();
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            let Some(name) = flag.strip_prefix("--") else {
                return Err(format!("unexpected argument {flag:?}"));
            };
            let Some(value) = it.next() else {
                return Err(format!("flag --{name} is missing its value"));
            };
            if map.insert(name.to_string(), value.clone()).is_some() {
                return Err(format!("flag --{name} given twice"));
            }
        }
        Ok(Flags(map))
    }

    fn take<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.0.get(name) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| format!("invalid value {raw:?} for --{name}")),
        }
    }

    fn required(&self, name: &str) -> Result<String, String> {
        self.0
            .get(name)
            .cloned()
            .ok_or_else(|| format!("missing required flag --{name}"))
    }

    fn optional(&self, name: &str) -> Option<String> {
        self.0.get(name).cloned()
    }

    fn ensure_known(&self, known: &[&str]) -> Result<(), String> {
        for key in self.0.keys() {
            if !known.contains(&key.as_str()) {
                return Err(format!("unknown flag --{key}"));
            }
        }
        Ok(())
    }
}

/// Resolves a method name through the one [`StrategyRegistry`] every
/// consumer shares; unknown names error with the full registered list.
fn build_method(name: &str) -> Result<Box<dyn FusionMethod>, String> {
    StrategyRegistry::standard()
        .build(name)
        .map_err(|e| e.to_string())
}

fn load_books(path: &str) -> Result<GeneratedBooks, String> {
    export::load_books(Path::new(path)).map_err(|e| format!("cannot load {path}: {e}"))
}

fn write_json<T: serde::Serialize>(value: &T, path: &str) -> Result<(), String> {
    let text = serde_json::to_string_pretty(value).map_err(|e| e.to_string())?;
    std::fs::write(PathBuf::from(path), text).map_err(|e| format!("cannot write {path}: {e}"))
}

/// Runs one CLI invocation; returns the human-readable report to print.
pub fn run(args: &[String]) -> Result<String, String> {
    let Some(command) = args.first() else {
        return Err(USAGE.to_string());
    };
    let flags = Flags::parse(&args[1..])?;
    match command.as_str() {
        "generate-books" => {
            flags.ensure_known(&[
                "out",
                "books",
                "sources",
                "seed",
                "min-statements",
                "max-statements",
                "attributes",
            ])?;
            let out = flags.required("out")?;
            let seed = flags.take("seed", 42u64)?;
            let config = BookGenConfig {
                n_books: flags.take("books", 100usize)?,
                n_sources: flags.take("sources", 10usize)?,
                statements_per_book: (
                    flags.take("min-statements", 3usize)?,
                    flags.take("max-statements", 8usize)?,
                ),
                seed,
                ..BookGenConfig::default()
            };
            let mut books = generate_books(config);
            // --attributes true rebuilds the dataset with typed claims
            // (authors/pages/published) for the per-attribute resolvers;
            // plain output is byte-identical to pre-attribute builds.
            if flags.take("attributes", false)? {
                books = books.with_attributes(seed);
            }
            export::save_books(&books, Path::new(&out)).map_err(|e| e.to_string())?;
            Ok(format!(
                "wrote {} books / {} statements / {} claims to {out}\nraw claims correct: {:.1}%",
                books.dataset.entities().len(),
                books.dataset.statements().len(),
                books.dataset.claims().len(),
                100.0 * books.raw_claim_true_rate()
            ))
        }
        "generate-countries" => {
            flags.ensure_known(&["out", "countries", "seed"])?;
            let out = flags.required("out")?;
            let countries = generate_countries(CountryGenConfig {
                n_countries: flags.take("countries", 20usize)?,
                seed: flags.take("seed", 7u64)?,
                ..CountryGenConfig::default()
            });
            export::save_countries(&countries, Path::new(&out)).map_err(|e| e.to_string())?;
            Ok(format!("wrote {} countries to {out}", countries.len()))
        }
        "fuse" => {
            flags.ensure_known(&["dataset", "method", "out", "report"])?;
            let books = load_books(&flags.required("dataset")?)?;
            let method = build_method(&flags.required("method")?)?;
            // The provenance-carrying path returns the exact FusionResult
            // `fuse` would (a tested invariant of every method), so taking
            // it unconditionally keeps plain runs byte-identical.
            let (result, ledger): (FusionResult, _) = method
                .fuse_with_provenance(&books.dataset)
                .map_err(|e| format!("fusion failed: {e}"))?;
            let accuracy = result.accuracy_against(&books.gold);
            if let Some(out) = flags.optional("out") {
                write_json(&result, &out)?;
            }
            if let Some(path) = flags.optional("report") {
                let mut report = FusionReport::generate(&books.dataset, &result, ledger);
                report.accuracy = Some(accuracy);
                std::fs::write(&path, report.to_json_pretty())
                    .map_err(|e| format!("cannot write {path}: {e}"))?;
            }
            Ok(format!(
                "{}: statement accuracy vs gold = {accuracy:.3} over {} statements",
                result.method(),
                result.probs().len()
            ))
        }
        "refine" => {
            flags.ensure_known(&[
                "dataset", "method", "k", "budget", "pc", "selector", "seed", "out", "csv",
                "threads",
            ])?;
            let books = load_books(&flags.required("dataset")?)?;
            let method_name = flags.take("method", DEFAULT_METHOD.to_string())?;
            // Registry lookup + fuse in one step, shared with the offline
            // pipeline (same path a `fuse` of the same name runs).
            let fusion =
                crate::pipeline::fuse_books(&books, &method_name).map_err(|e| e.to_string())?;
            let cases = entity_cases_from_books(&books, &fusion).map_err(|e| e.to_string())?;
            let k = flags.take("k", 2usize)?;
            let budget = flags.take("budget", 60usize)?;
            let pc = flags.take("pc", 0.8f64)?;
            let seed = flags.take("seed", 7u64)?;
            // `--threads N` (or, when the flag is absent, the
            // CROWDFUSION_THREADS environment variable) opts into the
            // entity-sharded engine. With neither set, the legacy serial
            // interleaved run is used, so existing invocations reproduce
            // byte for byte; sharded (any N ≥ 1), results are a pure
            // function of the seed — identical for every N.
            let threads = flags
                .optional("threads")
                .map(|raw| {
                    raw.parse::<usize>()
                        .ok()
                        .filter(|&t| t > 0)
                        .ok_or_else(|| format!("invalid value {raw:?} for --threads"))
                })
                .transpose()?
                .or_else(crowdfusion_core::pool::threads_from_env);
            let selector_name = flags.take("selector", "greedy".to_string())?;
            // The selector stays serial: with `--threads` the entities
            // already saturate the pool's workers, and nesting an N-thread
            // selector inside N entity workers would oversubscribe to ~N².
            let selector: Box<dyn TaskSelector> = match selector_name.as_str() {
                "greedy" => Box::new(GreedySelector::fast()),
                // Algorithm 2 preprocessing; beyond MAX_DENSE_FACTS the
                // answer table switches to the sparse backend, so book
                // entities with 26+ facts refine end to end.
                "greedy-pre" => Box::new(GreedySelector::fast().with_preprocess()),
                "random" => Box::new(RandomSelector),
                other => return Err(format!("unknown selector {other:?}")),
            };
            let config = RoundConfig::new(k, budget, pc).map_err(|e| e.to_string())?;
            let experiment = Experiment::new(cases, config).map_err(|e| e.to_string())?;
            let mut platform = CrowdPlatform::new(
                WorkerPool::uniform(30, pc).map_err(|e| e.to_string())?,
                UniformAccuracy::new(pc),
                seed,
            );
            let mut rng = StdRng::seed_from_u64(seed);
            let trace = match threads {
                Some(t) => experiment
                    .run_sharded(
                        selector.as_ref(),
                        &mut platform,
                        &mut rng,
                        &crowdfusion_core::Pool::new(t),
                    )
                    .map_err(|e| e.to_string())?,
                None => experiment
                    .run(selector.as_ref(), &mut platform, &mut rng)
                    .map_err(|e| e.to_string())?,
            };
            if let Some(out) = flags.optional("out") {
                write_json(&trace, &out)?;
            }
            if let Some(csv) = flags.optional("csv") {
                std::fs::write(&csv, quality_points_to_csv(&trace.points))
                    .map_err(|e| format!("cannot write {csv}: {e}"))?;
            }
            let first = &trace.points[0];
            let last = trace.last();
            Ok(format!(
                "{} with {} over {} books, k = {k}, budget {budget}, Pc = {pc}\n\
                 machine-only: F1 = {:.3}, utility = {:.2}\n\
                 refined     : F1 = {:.3}, utility = {:.2} (cost {})",
                selector.name(),
                fusion.method(),
                experiment.cases().len(),
                first.f1,
                first.utility,
                last.f1,
                last.utility,
                last.cost
            ))
        }
        "serve" => {
            flags.ensure_known(&[
                "config",
                "addr",
                "transport",
                "threads",
                "shards",
                "selector",
                "method",
                "k",
                "budget",
                "pc",
                "seed",
                "ready-file",
                "snapshot-dir",
                "wal-dir",
                "snapshot-every",
                "sync-every",
                "group-commit",
                "session-ttl-ms",
                "read-deadline-ms",
                "max-line-bytes",
                "budget-mode",
                "global-budget",
            ])?;
            // One declarative document, then flags override field by
            // field: `--config serve.json --shards 2` serves the file's
            // daemon with two shards.
            let mut serve = match flags.optional("config") {
                Some(path) => {
                    let text = std::fs::read_to_string(&path)
                        .map_err(|e| format!("cannot read {path}: {e}"))?;
                    crowdfusion_service::ServeConfig::from_json(&text)
                        .map_err(|e| format!("{path}: {e}"))?
                }
                None => crowdfusion_service::ServeConfig::new(),
            };
            serve.seed = flags.take("seed", serve.seed)?;
            serve.k = flags.take("k", serve.k)?;
            serve.budget = flags.take("budget", serve.budget)?;
            serve.pc = flags.take("pc", serve.pc)?;
            if let Some(raw) = flags.optional("threads") {
                let threads: usize = raw
                    .parse()
                    .ok()
                    .filter(|&t| t > 0)
                    .ok_or_else(|| format!("invalid value {raw:?} for --threads"))?;
                serve.threads = Some(threads);
            }
            serve.shards = flags.take("shards", serve.shards)?;
            serve.selector = flags.take("selector", serve.selector.clone())?;
            serve.method = flags.take("method", serve.method.clone())?;
            serve.addr = flags.take("addr", serve.addr.clone())?;
            serve.transport = flags.take("transport", serve.transport.clone())?;
            if let Some(path) = flags.optional("ready-file") {
                serve.ready_file = Some(path);
            }
            if let Some(dir) = flags.optional("snapshot-dir") {
                serve.snapshot_dir = Some(dir);
            }
            if let Some(dir) = flags.optional("wal-dir") {
                serve.wal_dir = Some(dir);
            }
            serve.snapshot_every = flags.take("snapshot-every", serve.snapshot_every)?;
            serve.sync_every = flags.take("sync-every", serve.sync_every)?;
            serve.group_commit = flags.take("group-commit", serve.group_commit)?;
            if serve.wal_dir.is_none()
                && (flags.optional("snapshot-every").is_some()
                    || flags.optional("sync-every").is_some())
            {
                return Err(
                    "--snapshot-every/--sync-every require --wal-dir (nothing to journal into)"
                        .to_string(),
                );
            }
            if let Some(raw) = flags.optional("session-ttl-ms") {
                let ttl: u64 = raw
                    .parse()
                    .map_err(|_| format!("invalid value {raw:?} for --session-ttl-ms"))?;
                serve.session_ttl_ms = Some(ttl);
            }
            if let Some(raw) = flags.optional("read-deadline-ms") {
                let deadline: u64 = raw
                    .parse()
                    .ok()
                    .filter(|&ms| ms > 0)
                    .ok_or_else(|| format!("invalid value {raw:?} for --read-deadline-ms"))?;
                serve.read_deadline_ms = Some(deadline);
            }
            serve.max_line_bytes = flags.take("max-line-bytes", serve.max_line_bytes)?;
            serve.budget_mode = flags.take("budget-mode", serve.budget_mode.clone())?;
            serve.global_budget = flags.take("global-budget", serve.global_budget)?;
            // One validation pass for flags and file alike.
            let config = serve.build()?;
            let threads = config.threads;
            match serve.transport()? {
                crowdfusion_service::Transport::Stdio => {
                    let service = crowdfusion_service::Service::new(config)
                        .map_err(|e| format!("serve: cannot recover durable state: {e}"))?;
                    let stdin = std::io::stdin();
                    crowdfusion_service::serve_stdio(&service, stdin.lock(), std::io::stdout())
                        .map_err(|e| format!("serve (stdio): {e}"))?;
                    Ok("crowdfusion-serve (stdio): shut down cleanly".to_string())
                }
                crowdfusion_service::Transport::Tcp => {
                    let listener = std::net::TcpListener::bind(&serve.addr)
                        .map_err(|e| format!("cannot bind {}: {e}", serve.addr))?;
                    let local = listener
                        .local_addr()
                        .map_err(|e| format!("cannot resolve bound address: {e}"))?;
                    if let Some(path) = &serve.ready_file {
                        std::fs::write(path, local.to_string())
                            .map_err(|e| format!("cannot write {path}: {e}"))?;
                    }
                    eprintln!(
                        "crowdfusion-serve listening on {local} \
                         ({threads} thread(s), {} shard(s))",
                        serve.shards
                    );
                    let service = crowdfusion_service::Service::new(config)
                        .map_err(|e| format!("serve: cannot recover durable state: {e}"))?;
                    let served =
                        crowdfusion_service::serve_tcp(std::sync::Arc::new(service), listener)
                            .map_err(|e| format!("serve (tcp): {e}"))?;
                    Ok(format!(
                        "crowdfusion-serve on {local}: served {served} connection(s); \
                         shut down cleanly"
                    ))
                }
            }
        }
        "demo" => {
            flags.ensure_known(&[])?;
            let facts = crowdfusion_core::model::FactSet::running_example();
            let mut rng = StdRng::seed_from_u64(0);
            let tasks = GreedySelector::fast()
                .select(facts.dist(), 0.8, 2, &mut rng)
                .map_err(|e| e.to_string())?;
            let names: Vec<String> = tasks.iter().map(|t| format!("f{}", t + 1)).collect();
            Ok(format!(
                "running example: {} facts, utility {:.3}\n\
                 best 2 tasks at Pc = 0.8: {{{}}} (paper: {{f1, f4}})\n\
                 run `cargo run -p crowdfusion-bench --bin running_example` for Tables I–IV",
                facts.len(),
                facts.utility(),
                names.join(", ")
            ))
        }
        "help" | "--help" | "-h" => Ok(USAGE.to_string()),
        other => Err(format!("unknown command {other:?}\n\n{USAGE}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("crowdfusion-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_string_lossy().into_owned()
    }

    #[test]
    fn help_and_errors() {
        assert!(run(&args(&["help"])).unwrap().contains("USAGE"));
        assert!(run(&[]).is_err());
        assert!(run(&args(&["frobnicate"]))
            .unwrap_err()
            .contains("unknown command"));
        assert!(run(&args(&["demo", "--bogus", "1"]))
            .unwrap_err()
            .contains("unknown flag"));
        assert!(run(&args(&["generate-books"]))
            .unwrap_err()
            .contains("--out"));
        assert!(run(&args(&["generate-books", "--out"]))
            .unwrap_err()
            .contains("missing its value"));
        assert!(run(&args(&["generate-books", "--out", "x", "--out", "y"]))
            .unwrap_err()
            .contains("twice"));
        assert!(
            run(&args(&["generate-books", "--out", "x", "--books", "zero"]))
                .unwrap_err()
                .contains("invalid value")
        );
    }

    #[test]
    fn demo_matches_paper() {
        let out = run(&args(&["demo"])).unwrap();
        assert!(out.contains("f1, f4"));
    }

    #[test]
    fn full_cli_pipeline() {
        let books = tmp("books.json");
        let fusion = tmp("fusion.json");
        let trace = tmp("trace.json");
        let csv = tmp("trace.csv");

        let report = run(&args(&[
            "generate-books",
            "--out",
            &books,
            "--books",
            "6",
            "--seed",
            "3",
        ]))
        .unwrap();
        assert!(report.contains("wrote 6 books"));

        let report = run(&args(&[
            "fuse",
            "--dataset",
            &books,
            "--method",
            "crh",
            "--out",
            &fusion,
        ]))
        .unwrap();
        assert!(report.contains("crh: statement accuracy"));
        assert!(std::fs::metadata(&fusion).unwrap().len() > 0);

        let report = run(&args(&[
            "refine",
            "--dataset",
            &books,
            "--k",
            "2",
            "--budget",
            "8",
            "--pc",
            "0.85",
            "--out",
            &trace,
            "--csv",
            &csv,
        ]))
        .unwrap();
        assert!(report.contains("refined"));
        let csv_text = std::fs::read_to_string(&csv).unwrap();
        assert!(csv_text.starts_with("cost,utility,f1,precision,recall"));
        let parsed = crowdfusion_core::metrics::quality_points_from_csv(&csv_text).unwrap();
        assert_eq!(parsed.last().unwrap().cost, 6 * 8);

        for f in [&books, &fusion, &trace, &csv] {
            std::fs::remove_file(f).ok();
        }
    }

    #[test]
    fn refine_threads_flag_is_thread_count_invariant() {
        let books = tmp("books3.json");
        run(&args(&["generate-books", "--out", &books, "--books", "4"])).unwrap();
        let csv_for = |threads: &str, csv: &str| {
            run(&args(&[
                "refine",
                "--dataset",
                &books,
                "--budget",
                "6",
                "--threads",
                threads,
                "--csv",
                csv,
            ]))
            .unwrap();
            std::fs::read_to_string(csv).unwrap()
        };
        let csv1 = tmp("t1.csv");
        let csv4 = tmp("t4.csv");
        assert_eq!(csv_for("1", &csv1), csv_for("4", &csv4));
        assert!(
            run(&args(&["refine", "--dataset", &books, "--threads", "zero"]))
                .unwrap_err()
                .contains("invalid value")
        );
        assert!(
            run(&args(&["refine", "--dataset", &books, "--threads", "0"]))
                .unwrap_err()
                .contains("invalid value")
        );
        for f in [&books, &csv1, &csv4] {
            std::fs::remove_file(f).ok();
        }
    }

    #[test]
    fn usage_lists_every_registered_method() {
        // The USAGE text is a constant, so it can drift from the registry;
        // this pins them together.
        for name in StrategyRegistry::standard().names() {
            assert!(USAGE.contains(name), "USAGE is missing method {name:?}");
        }
    }

    #[test]
    fn fuse_report_is_byte_stable_and_method_agnostic() {
        let books = tmp("books-report.json");
        run(&args(&["generate-books", "--out", &books, "--books", "5"])).unwrap();
        let report_a = tmp("report-a.json");
        let report_b = tmp("report-b.json");
        let fuse = |method: &str, report: &str| {
            run(&args(&[
                "fuse",
                "--dataset",
                &books,
                "--method",
                method,
                "--report",
                report,
            ]))
            .unwrap();
            std::fs::read_to_string(report).unwrap()
        };
        // Two identical runs emit identical bytes.
        let first = fuse("crh", &report_a);
        assert_eq!(first, fuse("crh", &report_b));
        assert!(first.contains("\"schema\": \"crowdfusion.fusion-report/v1\""));
        assert!(first.contains("\"provenance\""));
        assert!(first.contains("\"accuracy\""));
        // The composite also reports end to end.
        let composite = fuse("per-attribute", &report_b);
        assert!(composite.contains("\"method\": \"per-attribute\""));
        for f in [&books, &report_a, &report_b] {
            std::fs::remove_file(f).ok();
        }
    }

    #[test]
    fn refine_runs_atop_registry_strategies() {
        let books = tmp("books-methods.json");
        run(&args(&["generate-books", "--out", &books, "--books", "3"])).unwrap();
        for method in ["vote", "per-attribute"] {
            let report = run(&args(&[
                "refine",
                "--dataset",
                &books,
                "--method",
                method,
                "--budget",
                "4",
            ]))
            .unwrap();
            assert!(report.contains(method), "{report}");
            assert!(report.contains("refined"), "{report}");
        }
        std::fs::remove_file(&books).ok();
    }

    #[test]
    fn serve_validates_flags() {
        assert!(run(&args(&["serve", "--selector", "oracle"]))
            .unwrap_err()
            .contains("unknown selector"));
        assert!(run(&args(&["serve", "--method", "lda"]))
            .unwrap_err()
            .contains("unknown fusion method"));
        assert!(run(&args(&["serve", "--transport", "carrier-pigeon"]))
            .unwrap_err()
            .contains("unknown transport"));
        assert!(run(&args(&["serve", "--k", "0"]))
            .unwrap_err()
            .contains("task set is empty"));
        assert!(run(&args(&["serve", "--threads", "0"]))
            .unwrap_err()
            .contains("invalid value"));
        assert!(run(&args(&["serve", "--addr", "999.999.999.999:1"]))
            .unwrap_err()
            .contains("cannot bind"));
        assert!(run(&args(&["serve", "--budget-mode", "shared"]))
            .unwrap_err()
            .contains("unknown budget mode"));
        assert!(run(&args(&["serve", "--budget-mode", "global"]))
            .unwrap_err()
            .contains("global_budget"));
        assert!(run(&args(&["serve", "--global-budget", "50"]))
            .unwrap_err()
            .contains("budget_mode"));
    }

    #[test]
    fn serve_tcp_drives_a_daemon_to_clean_shutdown() {
        use crowdfusion_service::{Client, Request, Response};
        let ready = tmp("serve-ready.txt");
        std::fs::remove_file(&ready).ok();
        let args_owned = args(&[
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--ready-file",
            &ready,
            "--budget",
            "4",
            "--method",
            "truthfinder",
        ]);
        let daemon = std::thread::spawn(move || run(&args_owned));
        // Wait for the daemon to publish its bound address.
        let addr = {
            let mut tries = 0;
            loop {
                if let Ok(text) = std::fs::read_to_string(&ready) {
                    if !text.is_empty() {
                        break text.parse().unwrap();
                    }
                }
                tries += 1;
                assert!(tries < 200, "daemon never became ready");
                std::thread::sleep(std::time::Duration::from_millis(10));
            }
        };
        let mut client = Client::connect(addr).unwrap();
        assert!(matches!(
            client.roundtrip(&Request::Metrics).unwrap(),
            Response::Metrics { .. }
        ));
        assert_eq!(client.roundtrip(&Request::Shutdown).unwrap(), Response::Bye);
        let report = daemon.join().unwrap().unwrap();
        assert!(report.contains("shut down cleanly"), "{report}");
        std::fs::remove_file(&ready).ok();
    }

    #[test]
    fn generate_countries_cli() {
        let path = tmp("countries.json");
        let report = run(&args(&[
            "generate-countries",
            "--out",
            &path,
            "--countries",
            "4",
        ]))
        .unwrap();
        assert!(report.contains("wrote 4 countries"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn refine_rejects_bad_selector_and_method() {
        let books = tmp("books2.json");
        run(&args(&["generate-books", "--out", &books, "--books", "3"])).unwrap();
        assert!(run(&args(&[
            "refine",
            "--dataset",
            &books,
            "--selector",
            "oracle"
        ]))
        .unwrap_err()
        .contains("unknown selector"));
        assert!(
            run(&args(&["fuse", "--dataset", &books, "--method", "lda"]))
                .unwrap_err()
                .contains("unknown fusion method")
        );
        std::fs::remove_file(&books).ok();
    }
}
