//! The `crowdfusion` binary: see [`crowdfusion::cli`] for the commands.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match crowdfusion::cli::run(&args) {
        Ok(report) => println!("{report}"),
        Err(message) => {
            eprintln!("{message}");
            std::process::exit(2);
        }
    }
}
