//! # CrowdFusion
//!
//! A Rust implementation of **CrowdFusion: A Crowdsourced Approach on Data
//! Fusion Refinement** (Chen, Chen & Zhang, ICDE 2017) — a crowd–machine
//! hybrid system that refines machine-only data-fusion output by asking a
//! noisy crowd the most informative true/false questions.
//!
//! The workspace is organised as one crate per subsystem; this facade
//! re-exports them under stable paths:
//!
//! * [`jointdist`] — joint distributions over Bernoulli facts (the paper's
//!   output sets), entropy, factor-graph priors, sampling;
//! * [`fusion`] — truth-discovery substrate: claims datasets, majority
//!   voting, CRH (+ the paper's modified CRH), TruthFinder, ACCU,
//!   per-attribute conflict resolvers, the strategy registry every
//!   consumer resolves method names through, and run provenance/reports;
//! * [`crowd`] — the crowdsourcing substrate: workers, Bernoulli answer
//!   models, platform simulator, accuracy pre-tests;
//! * [`datagen`] — synthetic Book / country datasets with gold standards;
//! * [`core`] — the paper's contribution: Equation 2/3 machinery, NP-hard
//!   task selection with greedy/pruning/preprocessing, query-based mode,
//!   round driver and experiment orchestration;
//! * [`service`] — `crowdfusion-serve`: the long-lived multi-session
//!   refinement daemon (line-delimited JSON over TCP/stdio, streaming
//!   answer ingestion, snapshot/restore).
//!
//! ## Quickstart
//!
//! ```
//! use crowdfusion::prelude::*;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! // The paper's running example: 4 facts about Hong Kong (Tables I-II).
//! let facts = FactSet::running_example();
//!
//! // Select the best 2 tasks for a crowd with accuracy 0.8 (Algorithm 1).
//! let selector = GreedySelector::fast();
//! let mut rng = StdRng::seed_from_u64(7);
//! let tasks = selector.select(facts.dist(), 0.8, 2, &mut rng).unwrap();
//! assert_eq!(tasks, vec![0, 3]); // f1 and f4, as in Section III-D
//!
//! // Merge a "yes" answer about f1 (Equation 3).
//! let posterior = posterior(facts.dist(), &[0], &[true], 0.8).unwrap();
//! assert!(posterior.marginal(0).unwrap() > 0.5);
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod cli;
pub mod pipeline;

pub use crowdfusion_core as core;
pub use crowdfusion_crowd as crowd;
pub use crowdfusion_datagen as datagen;
pub use crowdfusion_fusion as fusion;
pub use crowdfusion_jointdist as jointdist;
pub use crowdfusion_service as service;

/// The most commonly used types and functions, for glob import.
pub mod prelude {
    pub use crowdfusion_core::allocation::{run_global, GlobalBudgetConfig};
    pub use crowdfusion_core::answers::{
        answer_distribution, answer_entropy, posterior, AnswerEvaluator, AnswerTable, TableBackend,
    };
    pub use crowdfusion_core::metrics::{ConfusionCounts, QualityPoint};
    pub use crowdfusion_core::model::{Fact, FactSet};
    pub use crowdfusion_core::prior::{default_grouped_prior, grouped_prior, independent_prior};
    pub use crowdfusion_core::query::{
        query_utility, run_query_rounds, QueryCurvePoint, QueryGreedySelector,
    };
    pub use crowdfusion_core::round::{EntityCase, EntityTrace, RoundConfig};
    pub use crowdfusion_core::selection::{
        GreedySelector, OptSelector, PruneBound, RandomSelector, SampledGreedySelector,
        SelectorKind, TaskSelector,
    };
    pub use crowdfusion_core::system::{Experiment, ExperimentTrace};
    pub use crowdfusion_core::CoreError;
    pub use crowdfusion_crowd::{
        estimate_accuracy, ClassAccuracy, CrowdPlatform, Task, TaskClass, UniformAccuracy,
        WorkerPool,
    };
    pub use crowdfusion_datagen::{BookGenConfig, CountryGenConfig, GeneratedBooks};
    pub use crowdfusion_fusion::{
        AccuVote, Crh, DataFusionStrategy, Dataset, FusionMethod, FusionReport, FusionResult,
        MajorityVote, ModifiedCrh, ProvenanceLedger, StrategyRegistry, TruthFinder,
    };
    pub use crowdfusion_jointdist::{
        binary_entropy, Assignment, Factor, FactorGraphBuilder, JointDist, VarSet,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_exposes_working_api() {
        let fs = FactSet::running_example();
        assert_eq!(fs.len(), 4);
        let d = JointDist::uniform(2).unwrap();
        assert!((d.entropy() - 2.0).abs() < 1e-12);
    }
}
