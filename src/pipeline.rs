//! End-to-end glue: dataset → machine fusion → CrowdFusion entity cases.
//!
//! This module wires the substrates together the way the paper's evaluation
//! does (Section V-A): run a machine-only fusion method over the claims
//! dataset, lift each book's per-statement marginals into a correlated
//! joint prior, and package book metadata (prompts, confusion classes, gold
//! truth) into [`EntityCase`]s ready for the round driver.

use crowdfusion_core::error::CoreError;
use crowdfusion_core::round::EntityCase;
use crowdfusion_core::session::EntitySpec;
use crowdfusion_datagen::{export, GeneratedBooks};
use crowdfusion_fusion::{EntityId, FusionError, FusionResult, StrategyRegistry};
use crowdfusion_jointdist::Assignment;

/// Runs the named fusion strategy over the books' dataset — the machine
/// half of `refine --method NAME`. The name resolves through the one
/// [`StrategyRegistry`] every consumer shares, so the pipeline is not
/// pinned to any particular backend; unknown names error with the full
/// registered list.
pub fn fuse_books(books: &GeneratedBooks, method: &str) -> Result<FusionResult, FusionError> {
    StrategyRegistry::standard()
        .build(method)?
        .fuse(&books.dataset)
}

/// Builds the gold [`Assignment`] of one book from its per-statement gold
/// labels.
pub fn gold_assignment(labels: &[bool]) -> Assignment {
    let mut a = Assignment::ALL_FALSE;
    for (i, &truth) in labels.iter().enumerate() {
        a = a.with(i, truth);
    }
    a
}

/// Builds one [`EntityCase`] per book: fusion marginals + correlation
/// groups become the joint prior; statement texts become crowd prompts;
/// confusion classes and gold labels are carried over.
pub fn entity_cases_from_books(
    books: &GeneratedBooks,
    fusion: &FusionResult,
) -> Result<Vec<EntityCase>, CoreError> {
    let mut cases = Vec::with_capacity(books.dataset.entities().len());
    for entity in books.dataset.entities() {
        cases.push(entity_case_for_book(books, fusion, entity.id)?);
    }
    Ok(cases)
}

/// Builds the [`EntityCase`] for a single book, by way of the service
/// wire format: the same [`EntitySpec`] a `crowdfusion-serve` client
/// would send for this book ([`export::wire_entity`]) is materialised
/// through [`EntitySpec::into_case`] — so the offline and served paths
/// share one prior construction and cannot drift apart.
pub fn entity_case_for_book(
    books: &GeneratedBooks,
    fusion: &FusionResult,
    entity: EntityId,
) -> Result<EntityCase, CoreError> {
    export::wire_entity(books, fusion, entity).into_case()
}

/// Exports every book as a service wire-format [`EntitySpec`], in entity
/// order — the payload a `crowdfusion-serve` `open` takes.
pub fn entity_specs_from_books(books: &GeneratedBooks, fusion: &FusionResult) -> Vec<EntitySpec> {
    export::wire_entities(books, fusion)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdfusion_datagen::book::generate;
    use crowdfusion_datagen::BookGenConfig;
    use crowdfusion_fusion::{FusionMethod, ModifiedCrh};

    #[test]
    fn gold_assignment_packs_bits() {
        let a = gold_assignment(&[true, false, true]);
        assert!(a.get(0) && !a.get(1) && a.get(2));
        assert_eq!(gold_assignment(&[]), Assignment::ALL_FALSE);
    }

    #[test]
    fn fuse_books_matches_the_direct_backend() {
        let books = generate(BookGenConfig::quick());
        let direct = ModifiedCrh::default().fuse(&books.dataset).unwrap();
        let named = fuse_books(&books, "modified-crh").unwrap();
        assert_eq!(named, direct);
        assert!(fuse_books(&books, "lda")
            .unwrap_err()
            .to_string()
            .contains("unknown fusion method"));
    }

    #[test]
    fn cases_align_with_books() {
        let books = generate(BookGenConfig::quick());
        let fusion = fuse_books(&books, crowdfusion_fusion::DEFAULT_METHOD).unwrap();
        let cases = entity_cases_from_books(&books, &fusion).unwrap();
        assert_eq!(cases.len(), books.dataset.entities().len());
        for (case, entity) in cases.iter().zip(books.dataset.entities()) {
            assert_eq!(case.num_facts(), entity.statements.len());
            case.validate().unwrap();
            // Priors must reflect the fusion marginals' ordering at least
            // loosely; check normalisation instead of exact values (the
            // correlation factors shift marginals).
            assert!((case.prior.total_mass() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn prompts_mention_book_and_statement() {
        let books = generate(BookGenConfig::quick());
        let fusion = ModifiedCrh::default().fuse(&books.dataset).unwrap();
        let case = entity_case_for_book(&books, &fusion, EntityId(0)).unwrap();
        let title = &books.dataset.entities()[0].name;
        for (prompt, s) in case
            .prompts
            .iter()
            .zip(books.dataset.statements_of(EntityId(0)))
        {
            assert!(prompt.contains(title.as_str()));
            assert!(prompt.contains(books.dataset.statement_text(*s)));
        }
    }
}
